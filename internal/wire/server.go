package wire

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"

	"repro/internal/buildinfo"
	"repro/internal/telemetry"
)

// Backend is what a database node serves: the SearchableDatabase
// surface plus the size needed to bounds-check document requests.
// repro.LocalDatabase satisfies it.
type Backend interface {
	Name() string
	Query(terms []string, limit int) (matches int, ids []int)
	Fetch(id int) []string
	NumDocs() int
}

// ServerOptions configures a database node handler.
type ServerOptions struct {
	// Category is advertised in /v1/info as the node's self-declared
	// classification (optional).
	Category string
	// MaxLimit caps the per-query result window a client may request
	// (default 1000) so one request cannot ask for the whole database.
	MaxLimit int
	// MaxInflight is the admission gate: when more than this many
	// protocol requests are in flight, further ones are shed with
	// 429 + Retry-After instead of queueing behind a saturated node.
	// Zero or negative means unlimited. /v1/health is exempt — an
	// overloaded node must still answer "am I alive".
	MaxInflight int
	// RetryAfter is the backoff advertised on shed responses
	// (default 1s).
	RetryAfter int
	// Metrics receives wire_server_requests_total,
	// wire_server_errors_total, wire_server_inflight, and
	// wire_server_shed_total (may be nil).
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records one wire.serve span per request.
	// The span joins the trace propagated in the X-Trace-Id /
	// X-Parent-Span headers (so it parents under the metasearcher's
	// query span) and carries the caller's per-attempt X-Request-Id,
	// making client retries distinguishable on the node's own trace.
	Tracer *telemetry.Tracer
}

// NewServer returns the http.Handler of a database node. Kept for
// callers that only need the handler; NewNode exposes the node's
// drain/inflight controls for graceful shutdown and load shedding.
func NewServer(db Backend, opts ServerOptions) http.Handler {
	return NewNode(db, opts)
}

// Node is one database node's HTTP server state: the /v1 protocol
// endpoints over a Backend, an admission gate that sheds load past
// MaxInflight, and a draining flag that fails /v1/health during
// graceful shutdown so probes route away before the listener closes.
type Node struct {
	db   Backend
	opts ServerOptions
	mux  http.Handler

	inflightN atomic.Int64
	draining  atomic.Bool

	requests *telemetry.Counter
	errors   *telemetry.Counter
	shed     *telemetry.Counter
	inflight *telemetry.Gauge
}

// NewNode builds a database node over db: an http.Handler with panic
// recovery, tracing, and (when opts.MaxInflight > 0) load shedding.
func NewNode(db Backend, opts ServerOptions) *Node {
	if opts.MaxLimit <= 0 {
		opts.MaxLimit = 1000
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = 1
	}
	n := &Node{db: db, opts: opts,
		requests: opts.Metrics.Counter("wire_server_requests_total"),
		errors:   opts.Metrics.Counter("wire_server_errors_total"),
		shed:     opts.Metrics.Counter("wire_server_shed_total"),
		inflight: opts.Metrics.Gauge("wire_server_inflight"),
	}
	for _, d := range []struct{ name, help string }{
		{"wire_server_requests_total", "Wire-protocol requests served by this node."},
		{"wire_server_errors_total", "Wire requests this node answered with an error envelope."},
		{"wire_server_shed_total", "Wire requests shed with 429 by the node's admission gate."},
		{"wire_server_inflight", "Wire requests this node is serving right now."},
	} {
		opts.Metrics.Describe(d.name, d.help)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+PathInfo, n.info)
	mux.HandleFunc("POST "+PathQuery, n.query)
	mux.HandleFunc("GET "+PathDocPrefix+"{id}", n.doc)
	n.mux = mux
	return n
}

// SetDraining marks the node as draining (or not). A draining node
// keeps serving in-flight protocol requests — http.Server.Shutdown
// waits for them — but answers /v1/health with 503 so health probes
// and breakers steer new traffic elsewhere.
func (n *Node) SetDraining(v bool) { n.draining.Store(v) }

// Draining reports whether the node is draining.
func (n *Node) Draining() bool { return n.draining.Load() }

// Inflight reports how many protocol requests are being served right
// now (health checks excluded).
func (n *Node) Inflight() int64 { return n.inflightN.Load() }

// ServeHTTP counts requests, applies the admission gate, opens the
// per-request trace span (joined to the caller's propagated trace
// context), and converts handler panics into 500 envelopes.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Health is exempt from the gate and the protocol counters: probes
	// must see through overload, and their volume must not distort the
	// node's request rate.
	if r.URL.Path == PathHealth {
		n.health(w, r)
		return
	}
	n.requests.Inc()
	cur := n.inflightN.Add(1)
	n.inflight.Add(1)
	defer func() {
		n.inflightN.Add(-1)
		n.inflight.Add(-1)
	}()
	if n.opts.MaxInflight > 0 && cur > int64(n.opts.MaxInflight) {
		n.shed.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(n.opts.RetryAfter))
		WriteError(w, http.StatusTooManyRequests, CodeOverloaded,
			fmt.Sprintf("node at capacity (%d in flight, max %d)", cur, n.opts.MaxInflight))
		return
	}
	span := n.opts.Tracer.SpanWithRemoteParent("wire.serve",
		telemetry.Extract(r.Header),
		telemetry.String("method", r.Method),
		telemetry.String("path", r.URL.Path),
		telemetry.String("request_id", r.Header.Get(telemetry.HeaderRequestID)))
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	defer func() {
		if p := recover(); p != nil {
			n.errors.Inc()
			WriteError(sw, http.StatusInternalServerError, CodeInternal,
				fmt.Sprintf("panic serving %s: %v", r.URL.Path, p))
		}
		span.End(telemetry.Int("status", sw.status))
	}()
	n.mux.ServeHTTP(sw, r)
}

// statusWriter records the response status for the request span.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (n *Node) fail(w http.ResponseWriter, status int, code, msg string) {
	n.errors.Inc()
	WriteError(w, status, code, msg)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (n *Node) health(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{
		Status:      "ok",
		Inflight:    n.inflightN.Load(),
		MaxInflight: n.opts.MaxInflight,
		Version:     buildinfo.Version(),
	}
	if n.draining.Load() {
		resp.Status = "draining"
		resp.Draining = true
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(resp)
		return
	}
	writeJSON(w, resp)
}

func (n *Node) info(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, InfoResponse{
		Name:     n.db.Name(),
		Protocol: Version,
		NumDocs:  n.db.NumDocs(),
		Category: n.opts.Category,
	})
}

func (n *Node) query(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		n.fail(w, http.StatusBadRequest, CodeBadRequest, "malformed query request: "+err.Error())
		return
	}
	if len(req.Terms) == 0 {
		n.fail(w, http.StatusBadRequest, CodeBadRequest, "query needs at least one term")
		return
	}
	limit := req.Limit
	if limit < 0 {
		limit = 0
	}
	if limit > n.opts.MaxLimit {
		limit = n.opts.MaxLimit
	}
	matches, ids := n.db.Query(req.Terms, limit)
	writeJSON(w, QueryResponse{Matches: matches, IDs: ids})
}

func (n *Node) doc(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		n.fail(w, http.StatusBadRequest, CodeBadRequest, "document id must be an integer")
		return
	}
	if id < 0 || id >= n.db.NumDocs() {
		n.fail(w, http.StatusNotFound, CodeNotFound,
			fmt.Sprintf("no document %d (database has %d)", id, n.db.NumDocs()))
		return
	}
	writeJSON(w, DocResponse{ID: id, Terms: n.db.Fetch(id)})
}
