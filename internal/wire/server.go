package wire

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/telemetry"
)

// Backend is what a database node serves: the SearchableDatabase
// surface plus the size needed to bounds-check document requests.
// repro.LocalDatabase satisfies it.
type Backend interface {
	Name() string
	Query(terms []string, limit int) (matches int, ids []int)
	Fetch(id int) []string
	NumDocs() int
}

// ServerOptions configures a database node handler.
type ServerOptions struct {
	// Category is advertised in /v1/info as the node's self-declared
	// classification (optional).
	Category string
	// MaxLimit caps the per-query result window a client may request
	// (default 1000) so one request cannot ask for the whole database.
	MaxLimit int
	// Metrics receives wire_server_requests_total and
	// wire_server_errors_total (may be nil).
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records one wire.serve span per request.
	// The span joins the trace propagated in the X-Trace-Id /
	// X-Parent-Span headers (so it parents under the metasearcher's
	// query span) and carries the caller's per-attempt X-Request-Id,
	// making client retries distinguishable on the node's own trace.
	Tracer *telemetry.Tracer
}

// NewServer returns the http.Handler of a database node: the /v1
// protocol endpoints over db, with panics mapped to internal-error
// envelopes so a bad request cannot take the node down.
func NewServer(db Backend, opts ServerOptions) http.Handler {
	if opts.MaxLimit <= 0 {
		opts.MaxLimit = 1000
	}
	s := &server{db: db, opts: opts,
		requests: opts.Metrics.Counter("wire_server_requests_total"),
		errors:   opts.Metrics.Counter("wire_server_errors_total"),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+PathInfo, s.info)
	mux.HandleFunc("POST "+PathQuery, s.query)
	mux.HandleFunc("GET "+PathDocPrefix+"{id}", s.doc)
	return s.wrap(mux)
}

type server struct {
	db   Backend
	opts ServerOptions

	requests *telemetry.Counter
	errors   *telemetry.Counter
}

// wrap counts requests, opens the per-request trace span (joined to
// the caller's propagated trace context), and converts handler panics
// into 500 envelopes.
func (s *server) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Inc()
		span := s.opts.Tracer.SpanWithRemoteParent("wire.serve",
			telemetry.Extract(r.Header),
			telemetry.String("method", r.Method),
			telemetry.String("path", r.URL.Path),
			telemetry.String("request_id", r.Header.Get(telemetry.HeaderRequestID)))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				s.errors.Inc()
				WriteError(sw, http.StatusInternalServerError, CodeInternal,
					fmt.Sprintf("panic serving %s: %v", r.URL.Path, p))
			}
			span.End(telemetry.Int("status", sw.status))
		}()
		next.ServeHTTP(sw, r)
	})
}

// statusWriter records the response status for the request span.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (s *server) fail(w http.ResponseWriter, status int, code, msg string) {
	s.errors.Inc()
	WriteError(w, status, code, msg)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *server) info(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, InfoResponse{
		Name:     s.db.Name(),
		Protocol: Version,
		NumDocs:  s.db.NumDocs(),
		Category: s.opts.Category,
	})
}

func (s *server) query(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, CodeBadRequest, "malformed query request: "+err.Error())
		return
	}
	if len(req.Terms) == 0 {
		s.fail(w, http.StatusBadRequest, CodeBadRequest, "query needs at least one term")
		return
	}
	limit := req.Limit
	if limit < 0 {
		limit = 0
	}
	if limit > s.opts.MaxLimit {
		limit = s.opts.MaxLimit
	}
	matches, ids := s.db.Query(req.Terms, limit)
	writeJSON(w, QueryResponse{Matches: matches, IDs: ids})
}

func (s *server) doc(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, CodeBadRequest, "document id must be an integer")
		return
	}
	if id < 0 || id >= s.db.NumDocs() {
		s.fail(w, http.StatusNotFound, CodeNotFound,
			fmt.Sprintf("no document %d (database has %d)", id, s.db.NumDocs()))
		return
	}
	writeJSON(w, DocResponse{ID: id, Terms: s.db.Fetch(id)})
}
