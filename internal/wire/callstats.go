package wire

import (
	"context"
	"sync/atomic"
)

// CallStats accumulates per-call transport statistics. The registry's
// wire counters are process-global; a caller that needs to know what
// one specific logical call cost (the search fan-out records per-node
// latency and retries in its query audit) attaches a CallStats to the
// context and reads it after the call returns. Safe for concurrent use.
type CallStats struct {
	attempts atomic.Int64
	retries  atomic.Int64
	sheds    atomic.Int64
}

// Attempts returns how many HTTP attempts were made under this context
// (at least one per logical request).
func (s *CallStats) Attempts() int64 {
	if s == nil {
		return 0
	}
	return s.attempts.Load()
}

// Retries returns how many of those attempts were retries.
func (s *CallStats) Retries() int64 {
	if s == nil {
		return 0
	}
	return s.retries.Load()
}

// Sheds returns how many attempts the node's admission gate rejected
// with 429 (each also counts as an attempt, and as a retry if the call
// tried again).
func (s *CallStats) Sheds() int64 {
	if s == nil {
		return 0
	}
	return s.sheds.Load()
}

type callStatsKey struct{}

// WithCallStats returns a context whose wire-client calls accumulate
// into the returned CallStats.
func WithCallStats(ctx context.Context) (context.Context, *CallStats) {
	s := &CallStats{}
	return ContextWithCallStats(ctx, s), s
}

// ContextWithCallStats attaches a caller-allocated CallStats to ctx.
// The hedged fan-out pre-allocates one per attempt so it can sum both
// attempts' costs even while the losing attempt is still in flight.
func ContextWithCallStats(ctx context.Context, s *CallStats) context.Context {
	return context.WithValue(ctx, callStatsKey{}, s)
}

// statsFromContext returns the attached CallStats, or nil.
func statsFromContext(ctx context.Context) *CallStats {
	s, _ := ctx.Value(callStatsKey{}).(*CallStats)
	return s
}
