package experiments

import (
	"errors"
	"testing"

	"repro/internal/selection"
)

// Worlds are expensive to build; share them across tests.
var (
	webWorld  *World
	trecWorld *World
)

func getWebWorld(t testing.TB) *World {
	t.Helper()
	if webWorld == nil {
		w, err := BuildWorld(Web, TestScale())
		if err != nil {
			t.Fatal(err)
		}
		webWorld = w
	}
	return webWorld
}

func getTRECWorld(t testing.TB) *World {
	t.Helper()
	if trecWorld == nil {
		sc := TestScale()
		sc.Queries = 6
		w, err := BuildWorld(TREC4, sc)
		if err != nil {
			t.Fatal(err)
		}
		trecWorld = w
	}
	return trecWorld
}

func TestBuildWorldWeb(t *testing.T) {
	w := getWebWorld(t)
	sc := TestScale()
	wantDBs := 54*sc.WebPerLeaf + sc.WebExtra
	if len(w.Bed.Databases) != wantDBs {
		t.Errorf("databases = %d, want %d", len(w.Bed.Databases), wantDBs)
	}
	if len(w.Bed.Queries) != sc.Queries {
		t.Errorf("queries = %d", len(w.Bed.Queries))
	}
	if len(w.Truth) != wantDBs || len(w.Relevant) != sc.Queries {
		t.Error("ground truth incomplete")
	}
	// Each query has at least one relevant document somewhere.
	for qi, row := range w.Relevant {
		var total int
		for _, r := range row {
			total += r
		}
		if total == 0 {
			t.Errorf("query %d has no relevant documents", qi)
		}
	}
}

func TestBuildWorldTREC(t *testing.T) {
	w := getTRECWorld(t)
	if len(w.Bed.Databases) == 0 {
		t.Fatal("no databases")
	}
	if w.Bed.Name != "TREC4" {
		t.Errorf("bed name = %s", w.Bed.Name)
	}
	// TREC4-style queries are long.
	for _, q := range w.Bed.Queries {
		if len(q.Terms) < 8 {
			t.Errorf("query %d has %d terms, want >= 8", q.ID, len(q.Terms))
		}
	}
}

func TestBuildSummariesQBS(t *testing.T) {
	w := getWebWorld(t)
	sums, err := w.BuildSummaries(Config{Sampler: QBS})
	if err != nil {
		t.Fatal(err)
	}
	n := len(w.Bed.Databases)
	if len(sums.Unshrunk) != n || len(sums.Shrunk) != n {
		t.Fatal("summary slices wrong length")
	}
	for i := range w.Bed.Databases {
		un := sums.Unshrunk[i]
		if un.Len() == 0 {
			t.Errorf("db %d: empty unshrunk summary", i)
			continue
		}
		// Raw configuration: |D̂| = |S|.
		if un.NumDocs != float64(un.SampleSize) {
			t.Errorf("db %d: raw summary NumDocs %v != sample size %d", i, un.NumDocs, un.SampleSize)
		}
		// Web QBS classification is the directory's (true) one.
		if sums.Class[i] != w.Bed.Databases[i].Category {
			t.Errorf("db %d: class %v, want true category %v", i, sums.Class[i], w.Bed.Databases[i].Category)
		}
		if sums.SizeEst[i] < float64(un.SampleSize) {
			t.Errorf("db %d: size estimate %v below sample size", i, sums.SizeEst[i])
		}
		if sums.Gamma[i] >= 0 {
			t.Errorf("db %d: gamma %v, want negative", i, sums.Gamma[i])
		}
	}
}

func TestBuildSummariesFreqEst(t *testing.T) {
	w := getWebWorld(t)
	sums, err := w.BuildSummaries(Config{Sampler: QBS, FreqEst: true})
	if err != nil {
		t.Fatal(err)
	}
	// With frequency estimation the summary's size is the
	// sample-resample estimate, not |S|.
	larger := 0
	for i := range w.Bed.Databases {
		if sums.Unshrunk[i].NumDocs > float64(sums.Unshrunk[i].SampleSize) {
			larger++
		}
	}
	if larger < len(w.Bed.Databases)/2 {
		t.Errorf("only %d/%d databases got a size estimate above |S|", larger, len(w.Bed.Databases))
	}
}

func TestBuildSummariesFPSClassifiesReasonably(t *testing.T) {
	w := getWebWorld(t)
	sums, err := w.BuildSummaries(Config{Sampler: FPS})
	if err != nil {
		t.Fatal(err)
	}
	// FPS-derived classification should usually land on the true
	// category's root-path (exact or an ancestor).
	onPath := 0
	for i, db := range w.Bed.Databases {
		if w.Bed.Tree.IsAncestorOrSelf(sums.Class[i], db.Category) {
			onPath++
		}
	}
	if frac := float64(onPath) / float64(len(w.Bed.Databases)); frac < 0.6 {
		t.Errorf("FPS classification on true path for only %.0f%% of databases", 100*frac)
	}
}

func TestQualityShapes(t *testing.T) {
	// The headline content-summary result (Tables 4-7): shrinkage
	// raises recall and costs a little precision; unshrunk summaries
	// have perfect precision.
	w := getWebWorld(t)
	row, err := w.Quality(QBS, false)
	if err != nil {
		t.Fatal(err)
	}
	if row.WR.Shrunk <= row.WR.Unshrunk {
		t.Errorf("weighted recall: shrunk %v <= unshrunk %v", row.WR.Shrunk, row.WR.Unshrunk)
	}
	if row.UR.Shrunk <= row.UR.Unshrunk {
		t.Errorf("unweighted recall: shrunk %v <= unshrunk %v", row.UR.Shrunk, row.UR.Unshrunk)
	}
	if row.WP.Unshrunk != 1 || row.UP.Unshrunk != 1 {
		t.Errorf("unshrunk precision should be 1, got wp=%v up=%v", row.WP.Unshrunk, row.UP.Unshrunk)
	}
	if row.WP.Shrunk >= 1 || row.WP.Shrunk < 0.5 {
		t.Errorf("shrunk weighted precision = %v, want in [0.5, 1)", row.WP.Shrunk)
	}
	if row.WR.Unshrunk < 0.5 {
		t.Errorf("unshrunk weighted recall = %v, sampling looks broken", row.WR.Unshrunk)
	}
	if row.UR.Unshrunk > 0.95 {
		t.Errorf("unshrunk unweighted recall = %v; testbed too easy for the sparse-data problem", row.UR.Unshrunk)
	}
}

func TestSelectionAccuracyStrategies(t *testing.T) {
	w := getTRECWorld(t)
	sums, err := w.BuildSummaries(Config{Sampler: QBS, FreqEst: true})
	if err != nil {
		t.Fatal(err)
	}
	scorer := selection.CORI{}
	plain := w.SelectionAccuracy(sums, scorer, Plain, 5)
	shrink := w.SelectionAccuracy(sums, scorer, Shrinkage, 5)
	hier := w.SelectionAccuracy(sums, scorer, Hierarchical, 5)

	for _, res := range []AccuracyResult{plain, shrink, hier} {
		if len(res.Rk) != 5 {
			t.Fatalf("Rk curve length = %d", len(res.Rk))
		}
		for k, v := range res.Rk {
			if v < 0 || v > 1 {
				t.Errorf("%v R%d = %v out of range", res.Strategy, k+1, v)
			}
		}
	}
	if shrink.ShrinkRate < 0 || shrink.ShrinkRate > 1 {
		t.Errorf("shrink rate = %v", shrink.ShrinkRate)
	}
	if plain.ShrinkRate != 0 {
		t.Errorf("plain strategy reported shrinkage rate %v", plain.ShrinkRate)
	}
}

func TestAccuracySweepReturnsThreeStrategies(t *testing.T) {
	w := getTRECWorld(t)
	sums, err := w.BuildSummaries(Config{Sampler: QBS, FreqEst: true})
	if err != nil {
		t.Fatal(err)
	}
	res := w.AccuracySweep(sums, selection.BGloss{})
	if len(res) != 3 {
		t.Fatalf("sweep results = %d", len(res))
	}
	seen := map[Strategy]bool{}
	for _, r := range res {
		seen[r.Strategy] = true
		if r.Algo != "bGlOSS" {
			t.Errorf("algo = %s", r.Algo)
		}
	}
	if !seen[Plain] || !seen[Shrinkage] || !seen[Hierarchical] {
		t.Errorf("strategies missing: %v", seen)
	}
}

func TestKindAndConfigStrings(t *testing.T) {
	if Web.String() != "Web" || TREC4.String() != "TREC4" || TREC6.String() != "TREC6" {
		t.Error("BedKind strings wrong")
	}
	c := Config{Sampler: FPS, FreqEst: true, Run: 2}
	if c.String() != "FPS/freqest/run2" {
		t.Errorf("Config string = %s", c)
	}
	if Plain.String() != "Plain" || Shrinkage.String() != "Shrinkage" {
		t.Error("Strategy strings wrong")
	}
}

func TestReDDEAccuracy(t *testing.T) {
	w := getTRECWorld(t)
	sums, err := w.BuildSummaries(Config{Sampler: QBS, FreqEst: true, KeepSampleDocs: true})
	if err != nil {
		t.Fatal(err)
	}
	if sums.SampleDocs == nil {
		t.Fatal("sample docs not retained")
	}
	res, err := w.ReDDEAccuracy(sums, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algo != "ReDDE" || res.SeriesLabel() != "QBS-ReDDE" {
		t.Errorf("labels = %s / %s", res.Algo, res.SeriesLabel())
	}
	for k, v := range res.Rk {
		if v < 0 || v > 1 {
			t.Errorf("R%d = %v", k+1, v)
		}
	}
	// Built without sample docs -> clear error.
	plain, err := w.BuildSummaries(Config{Sampler: QBS, FreqEst: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.ReDDEAccuracy(plain, 0, 5); err == nil {
		t.Error("missing sample docs accepted")
	}
}

func TestBuildSummariesParallelMatchesSequential(t *testing.T) {
	w := getWebWorld(t)
	seq, err := w.BuildSummaries(Config{Sampler: QBS, FreqEst: true})
	if err != nil {
		t.Fatal(err)
	}
	w2 := *w
	w2.Scale.Workers = 4
	par, err := w2.BuildSummaries(Config{Sampler: QBS, FreqEst: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Bed.Databases {
		if seq.Class[i] != par.Class[i] || seq.SizeEst[i] != par.SizeEst[i] ||
			seq.Unshrunk[i].Len() != par.Unshrunk[i].Len() {
			t.Fatalf("db %d differs between sequential and parallel builds", i)
		}
	}
}

func TestForEachDatabasePropagatesError(t *testing.T) {
	calls := 0
	err := forEachDatabase(10, 1, func(i int) error {
		calls++
		if i == 3 {
			return errSentinel
		}
		return nil
	})
	if err != errSentinel {
		t.Errorf("err = %v", err)
	}
	if calls != 4 {
		t.Errorf("sequential run did not stop at the error: %d calls", calls)
	}
	if err := forEachDatabase(20, 4, func(i int) error {
		if i == 7 {
			return errSentinel
		}
		return nil
	}); err != errSentinel {
		t.Errorf("parallel err = %v", err)
	}
	if err := forEachDatabase(0, 4, func(int) error { return errSentinel }); err != nil {
		t.Errorf("n=0 err = %v", err)
	}
}

var errSentinel = errors.New("sentinel")

func TestCompareRk(t *testing.T) {
	w := getTRECWorld(t)
	sums, err := w.BuildSummaries(Config{Sampler: QBS, FreqEst: true})
	if err != nil {
		t.Fatal(err)
	}
	a := w.SelectionAccuracy(sums, selection.BGloss{}, Shrinkage, 5)
	b := w.SelectionAccuracy(sums, selection.BGloss{}, Plain, 5)
	if len(a.PerQueryMeanRk) != len(w.Bed.Queries) {
		t.Fatalf("per-query samples = %d", len(a.PerQueryMeanRk))
	}
	res, err := CompareRk(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0 || res.P > 1 {
		t.Errorf("p = %v", res.P)
	}
	// Self comparison: no difference.
	self, err := CompareRk(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if self.T != 0 || self.P != 1 {
		t.Errorf("self comparison t=%v p=%v", self.T, self.P)
	}
}
