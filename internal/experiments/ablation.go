package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/selection"
	"repro/internal/stats"
	"repro/internal/synth"
)

// CategoryWeightingAblation compares the two category-summary
// aggregation rules of Definition 3: Equation 1 (databases weighted by
// |D̂|) versus the footnote-5 alternative (equal weights). The paper
// reports the two produced "virtually identical" results; this ablation
// quantifies that claim on the reproduction testbed by re-shrinking all
// databases under each rule and comparing summary quality.
func CategoryWeightingAblation(out io.Writer, w *World, sums *DBSummaries) {
	classified := sums.Classified(w)

	measure := func(weighting core.Weighting) (wr, ur float64) {
		cats := core.BuildCategorySummaries(w.Bed.Tree, classified, weighting)
		var wrs, urs []float64
		for i := range classified {
			truth := w.Truth[i]
			if truth.Len() == 0 {
				continue
			}
			sh := core.Shrink(cats, classified[i], core.ShrinkOptions{}).Materialize(1)
			wrs = append(wrs, metrics.WeightedRecall(truth, sh))
			urs = append(urs, metrics.UnweightedRecall(truth, sh))
		}
		return stats.Mean(wrs), stats.Mean(urs)
	}

	wrSize, urSize := measure(core.SizeWeighted)
	wrEq, urEq := measure(core.EqualWeighted)
	fmt.Fprintf(out, "%-24s %8s %8s\n", "Aggregation", "wr", "ur")
	fmt.Fprintf(out, "%-24s %8.3f %8.3f\n", "Equation 1 (by size)", wrSize, urSize)
	fmt.Fprintf(out, "%-24s %8.3f %8.3f\n", "Equal weights (fn. 5)", wrEq, urEq)
	fmt.Fprintf(out, "difference: wr %+0.4f, ur %+0.4f\n", wrEq-wrSize, urEq-urSize)
}

// MCStability quantifies Section 4's claim that "after examining just a
// few hundred random d1..dn combinations, mean and variance converge":
// it compares the adaptive shrink/don't-shrink decisions at several
// Monte-Carlo budgets against a high-budget reference and reports the
// agreement rate.
func MCStability(out io.Writer, w *World, sums *DBSummaries) {
	mkDBs := func() []*selection.DB {
		dbs := make([]*selection.DB, len(w.Bed.Databases))
		for i, db := range w.Bed.Databases {
			dbs[i] = &selection.DB{
				Name: db.Name, Unshrunk: sums.Unshrunk[i], Shrunk: sums.Shrunk[i],
				Gamma: sums.Gamma[i], Size: int(sums.SizeEst[i]),
			}
		}
		return dbs
	}
	decide := func(combos int) [][]bool {
		a := &selection.Adaptive{Base: selection.CORI{}, Opts: selection.AdaptiveOptions{
			MaxCombos: combos,
			RelTol:    -1, // disable early stop: isolate the budget effect
			Seed:      synth.SubSeed(w.Scale.Seed, 99),
		}}
		dbs := mkDBs()
		var all [][]bool
		for _, q := range w.Bed.Queries {
			entries := make([]selection.Entry, len(dbs))
			for i, db := range dbs {
				entries[i] = selection.Entry{Name: db.Name, View: db.Unshrunk}
			}
			ctx := selection.NewContext(q.Terms, entries, sums.GlobalSummary())
			_, decisions := a.Choose(q.Terms, dbs, ctx)
			row := make([]bool, len(decisions))
			for i, d := range decisions {
				row[i] = d.Shrinkage
			}
			all = append(all, row)
		}
		return all
	}
	ref := decide(2000)
	fmt.Fprintf(out, "%-8s %12s\n", "combos", "agreement")
	for _, combos := range []int{25, 50, 100, 200, 400, 800} {
		got := decide(combos)
		var agree, total int
		for qi := range ref {
			for di := range ref[qi] {
				total++
				if got[qi][di] == ref[qi][di] {
					agree++
				}
			}
		}
		fmt.Fprintf(out, "%-8d %11.1f%%\n", combos, 100*float64(agree)/float64(total))
	}
}
