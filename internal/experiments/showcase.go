package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// LambdaListing is one database's EM mixture weights (Table 2).
type LambdaListing struct {
	Database string
	Lambdas  []core.Lambda
}

// Table2Lambdas computes the mixture weights for up to n databases of
// the world under one configuration, preferring deeply classified
// databases (the paper shows two leaf-classified databases).
func (w *World) Table2Lambdas(sums *DBSummaries, n int) []LambdaListing {
	type cand struct {
		i     int
		depth int
	}
	var cands []cand
	for i := range w.Bed.Databases {
		cands = append(cands, cand{i, w.Bed.Tree.Depth(sums.Class[i])})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].depth != cands[b].depth {
			return cands[a].depth > cands[b].depth
		}
		return cands[a].i < cands[b].i
	})
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]LambdaListing, 0, n)
	for _, c := range cands[:n] {
		out = append(out, LambdaListing{
			Database: w.Bed.Databases[c.i].Name,
			Lambdas:  sums.Shrunk[c.i].Lambdas(),
		})
	}
	return out
}

// Table1 renders a fragment of two content summaries in the style of
// the paper's Table 1, contrasting a topical word's probability across
// two differently classified databases.
func (w *World) Table1(words int) string {
	// Pick two databases from different top-level categories.
	var i1, i2 = -1, -1
	for i, db := range w.Bed.Databases {
		path := w.Bed.Tree.Path(db.Category)
		if len(path) < 2 {
			continue
		}
		top := path[1]
		if i1 < 0 {
			i1 = i
			continue
		}
		if w.Bed.Tree.Path(w.Bed.Databases[i1].Category)[1] != top {
			i2 = i
			break
		}
	}
	if i1 < 0 || i2 < 0 {
		return "Table 1: not enough differently classified databases\n"
	}
	var b strings.Builder
	b.WriteString("Table 1: Content summary fragments\n")
	for _, i := range []int{i1, i2} {
		db := w.Bed.Databases[i]
		truth := w.Truth[i]
		fmt.Fprintf(&b, "%s, |D| = %d  (%s)\n", db.Name, db.Size(), w.Bed.Tree.PathString(db.Category))
		for _, word := range truth.TopWords(words) {
			fmt.Fprintf(&b, "  %-24s p(w|D) = %.4g\n", word, truth.P(word))
		}
	}
	return b.String()
}

// Table3 lists example databases of the world (name, size,
// classification) in the style of the paper's Table 3.
func (w *World) Table3(n int) string {
	idx := make([]int, len(w.Bed.Databases))
	for i := range idx {
		idx[i] = i
	}
	// Largest databases first, as the paper's examples are.
	sort.Slice(idx, func(a, b int) bool {
		return w.Bed.Databases[idx[a]].Size() > w.Bed.Databases[idx[b]].Size()
	})
	if n > len(idx) {
		n = len(idx)
	}
	var b strings.Builder
	b.WriteString("Table 3: Example databases\n")
	fmt.Fprintf(&b, "%-32s %10s  %s\n", "Database", "Documents", "Classification")
	for _, i := range idx[:n] {
		db := w.Bed.Databases[i]
		fmt.Fprintf(&b, "%-32s %10d  %s\n", db.Name, db.Size(), w.Bed.Tree.PathString(db.Category))
	}
	return b.String()
}
