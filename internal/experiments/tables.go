package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// FormatQualityTable renders one of Tables 4-9 from quality rows. The
// metric is selected by name: "wr", "ur", "wp", "up", "srcc", or "kl".
func FormatQualityTable(title, metric string, rows []QualityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-8s %-8s %-9s %10s %10s %12s\n",
		"Data Set", "Sampling", "Freq.Est.", "Shrink=Yes", "Shrink=No", "t-test p")
	for _, r := range rows {
		cell := r.cell(metric)
		fe := "No"
		if r.FreqEst {
			fe = "Yes"
		}
		fmt.Fprintf(&b, "%-8s %-8s %-9s %10.3f %10.3f %12.2g\n",
			r.Bed, r.Sampler, fe, cell.Shrunk, cell.Unshrunk, cell.P)
	}
	return b.String()
}

func (r QualityRow) cell(metric string) QualityCell {
	switch strings.ToLower(metric) {
	case "wr":
		return r.WR
	case "ur":
		return r.UR
	case "wp":
		return r.WP
	case "up":
		return r.UP
	case "srcc":
		return r.SRCC
	case "kl":
		return r.KL
	}
	return QualityCell{}
}

// QualityMetricTitle maps table numbers to metric keys and titles.
var QualityMetricTitle = map[int][2]string{
	4: {"wr", "Table 4: Weighted recall wr"},
	5: {"ur", "Table 5: Unweighted recall ur"},
	6: {"wp", "Table 6: Weighted precision wp"},
	7: {"up", "Table 7: Unweighted precision up"},
	8: {"srcc", "Table 8: Spearman Correlation Coefficient SRCC"},
	9: {"kl", "Table 9: KL-divergence"},
}

// FormatRkSeries renders one Rk-vs-k figure panel as aligned text
// series, in the style of Figures 4 and 5.
func FormatRkSeries(title string, results []AccuracyResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-4s", "k")
	for _, r := range results {
		fmt.Fprintf(&b, " %22s", r.SeriesLabel())
	}
	b.WriteByte('\n')
	if len(results) == 0 {
		return b.String()
	}
	for k := 0; k < len(results[0].Rk); k++ {
		fmt.Fprintf(&b, "%-4d", k+1)
		for _, r := range results {
			fmt.Fprintf(&b, " %22.3f", r.Rk[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatRkCSV renders an Rk figure panel as CSV (k plus one column per
// series), for plotting.
func FormatRkCSV(title string, results []AccuracyResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	b.WriteString("k")
	for _, r := range results {
		b.WriteString(",")
		b.WriteString(r.SeriesLabel())
	}
	b.WriteByte('\n')
	if len(results) == 0 {
		return b.String()
	}
	for k := 0; k < len(results[0].Rk); k++ {
		fmt.Fprintf(&b, "%d", k+1)
		for _, r := range results {
			fmt.Fprintf(&b, ",%.4f", r.Rk[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ShrinkRateRow is one row of Table 10.
type ShrinkRateRow struct {
	Bed     BedKind
	Sampler SamplerKind
	Algo    string
	Rate    float64
}

// FormatShrinkRateTable renders Table 10 (percentage of query-database
// pairs for which shrinkage was applied).
func FormatShrinkRateTable(rows []ShrinkRateRow) string {
	var b strings.Builder
	b.WriteString("Table 10: Percentage of query-database pairs with shrinkage applied\n")
	fmt.Fprintf(&b, "%-8s %-8s %-10s %10s\n", "Data Set", "Sampling", "Selection", "Shrinkage")
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Bed != rows[j].Bed {
			return rows[i].Bed < rows[j].Bed
		}
		return rows[i].Sampler < rows[j].Sampler
	})
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-8s %-10s %9.2f%%\n", r.Bed, r.Sampler, r.Algo, 100*r.Rate)
	}
	return b.String()
}

// FormatLambdaTable renders the Table 2 style mixture-weight listing
// for a set of databases.
func FormatLambdaTable(dbs []LambdaListing) string {
	var b strings.Builder
	b.WriteString("Table 2: Category mixture weights λ\n")
	fmt.Fprintf(&b, "%-28s %-22s %8s\n", "Database", "Category", "λ")
	for _, l := range dbs {
		name := l.Database
		for _, lam := range l.Lambdas {
			fmt.Fprintf(&b, "%-28s %-22s %8.3f\n", name, lam.Component, lam.Weight)
			name = ""
		}
	}
	return b.String()
}
