package experiments

import "strings"

// The synthetic vocabulary uses underscores (heart_31_3) that the
// metasearcher's tokenizer treats as word breaks. Sanitize maps the
// testbed's token space into one the full text pipeline preserves; the
// mapping is injective over the generator's <topic>_<i>_<j> words, so
// no two distinct words collide. Both cmd/metasearch and cmd/dbnode use
// it, so a metasearcher and the nodes it queries agree on term space.
func Sanitize(w string) string { return strings.ReplaceAll(w, "_", "u") }

// SanitizeAll applies Sanitize to every word.
func SanitizeAll(ws []string) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = Sanitize(w)
	}
	return out
}
