package experiments

import (
	"math"

	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/summary"
)

// QualityCell aggregates one content-summary quality metric over the
// databases of a testbed.
type QualityCell struct {
	Shrunk   float64 // shrinkage applied
	Unshrunk float64 // plain sample summary
	// P is the paired t-test p-value of the per-database difference
	// (shrunk vs unshrunk); the paper reports significance at 0.01%.
	P float64
}

// QualityRow is one row of Tables 4-9: a (testbed, sampler, frequency
// estimation) configuration with all six metrics.
type QualityRow struct {
	Bed     BedKind
	Sampler SamplerKind
	FreqEst bool
	WR      QualityCell // Table 4: weighted recall
	UR      QualityCell // Table 5: unweighted recall
	WP      QualityCell // Table 6: weighted precision
	UP      QualityCell // Table 7: unweighted precision
	SRCC    QualityCell // Table 8: Spearman rank correlation
	KL      QualityCell // Table 9: KL divergence
	Runs    int
}

// Quality evaluates content-summary quality for one (sampler, freqest)
// configuration, averaging over the world's configured number of
// sampling runs (the paper averages QBS over five samples).
func (w *World) Quality(sampler SamplerKind, freqEst bool) (QualityRow, error) {
	runs := 1
	if sampler == QBS {
		runs = w.Scale.QBSRuns
	}
	row := QualityRow{Bed: w.Kind, Sampler: sampler, FreqEst: freqEst, Runs: runs}

	// Per-database metric values pooled across runs, paired
	// shrunk/unshrunk for the significance tests.
	type pair struct{ sh, un []float64 }
	var wr, ur, wp, up, srcc, kl pair

	for run := 0; run < runs; run++ {
		sums, err := w.BuildSummaries(Config{Sampler: sampler, FreqEst: freqEst, Run: run})
		if err != nil {
			return row, err
		}
		for i := range w.Bed.Databases {
			truth := w.Truth[i]
			if truth.Len() == 0 {
				continue
			}
			// A database whose sampling produced no documents has no
			// summary to evaluate (the paper's samplers always retrieve
			// something); skip rather than score phantom zeros.
			if sums.Unshrunk[i].Len() == 0 {
				continue
			}
			un := metrics.ApplyRoundRule(sums.Unshrunk[i])
			sh := sums.Shrunk[i].Materialize(1)

			wr.sh = append(wr.sh, metrics.WeightedRecall(truth, sh))
			wr.un = append(wr.un, metrics.WeightedRecall(truth, un))
			ur.sh = append(ur.sh, metrics.UnweightedRecall(truth, sh))
			ur.un = append(ur.un, metrics.UnweightedRecall(truth, un))
			wp.sh = append(wp.sh, metrics.WeightedPrecision(truth, sh))
			wp.un = append(wp.un, metrics.WeightedPrecision(truth, un))
			up.sh = append(up.sh, metrics.UnweightedPrecision(truth, sh))
			up.un = append(up.un, metrics.UnweightedPrecision(truth, un))
			srcc.sh = append(srcc.sh, metrics.SRCC(truth, sh))
			srcc.un = append(srcc.un, metrics.SRCC(truth, un))
			if kSh, kUn := metrics.KL(truth, sh), metrics.KL(truth, un); !math.IsInf(kSh, 0) && !math.IsInf(kUn, 0) {
				kl.sh = append(kl.sh, kSh)
				kl.un = append(kl.un, kUn)
			}
		}
	}

	cell := func(p pair) QualityCell {
		c := QualityCell{Shrunk: stats.Mean(p.sh), Unshrunk: stats.Mean(p.un), P: 1}
		if res, err := stats.PairedTTest(p.sh, p.un); err == nil {
			c.P = res.P
		}
		return c
	}
	row.WR = cell(wr)
	row.UR = cell(ur)
	row.WP = cell(wp)
	row.UP = cell(up)
	row.SRCC = cell(srcc)
	row.KL = cell(kl)
	return row, nil
}

// QualityGrid runs Quality over the full 2×2 sampler × freqest grid,
// producing the four rows each testbed contributes to Tables 4-9.
func (w *World) QualityGrid() ([]QualityRow, error) {
	var rows []QualityRow
	for _, sampler := range []SamplerKind{QBS, FPS} {
		for _, fe := range []bool{false, true} {
			row, err := w.Quality(sampler, fe)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// GlobalSummary materializes the Root category summary, which the LM
// scorer smooths against (Section 5.3).
func (s *DBSummaries) GlobalSummary() *summary.Summary {
	return s.Cats.Summary(0)
}
