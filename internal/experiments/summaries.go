package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/freqest"
	"repro/internal/hierarchy"
	"repro/internal/sampling"
	"repro/internal/summary"
	"repro/internal/synth"
	"repro/internal/zipf"
)

// SamplerKind selects the content-summary construction strategy.
type SamplerKind int

const (
	// QBS is query-based sampling (Callan & Connell).
	QBS SamplerKind = iota
	// FPS is focused probing (Ipeirotis & Gravano).
	FPS
)

// String implements fmt.Stringer.
func (k SamplerKind) String() string {
	if k == FPS {
		return "FPS"
	}
	return "QBS"
}

// Config is one summary-construction configuration of the evaluation
// grid (Section 5.2).
type Config struct {
	Sampler SamplerKind
	// FreqEst enables the Appendix A frequency estimation plus
	// sample–resample size estimation.
	FreqEst bool
	// Run distinguishes repeated sampling runs (the paper averages QBS
	// results over five samples; runs differ only in sampling seeds).
	Run int
	// KeepSampleDocs retains the raw sampled documents per database
	// (needed by sample-pooling algorithms such as ReDDE).
	KeepSampleDocs bool
}

// String implements fmt.Stringer.
func (c Config) String() string {
	fe := "raw"
	if c.FreqEst {
		fe = "freqest"
	}
	docs := ""
	if c.KeepSampleDocs {
		docs = "+docs"
	}
	return fmt.Sprintf("%v/%s/run%d%s", c.Sampler, fe, c.Run, docs)
}

// DBSummaries holds, for one configuration, everything database
// selection needs: the per-database approximate summaries (unshrunk and
// shrunk), the classification used, the category summaries, and the
// Appendix B statistics for the adaptive algorithm.
type DBSummaries struct {
	Config   Config
	Unshrunk []*summary.Summary
	Shrunk   []*core.ShrunkSummary
	Class    []hierarchy.NodeID
	Cats     *core.CategorySummaries
	// SizeEst is the sample–resample database size estimate (always
	// computed; the raw configurations keep |D̂| = |S| in the summary
	// but the adaptive uncertainty model still needs |D|).
	SizeEst []float64
	// Gamma is the per-database frequency power-law exponent γ = 1/α−1.
	Gamma []float64
	// SampleDocs holds each database's sampled documents when the
	// configuration requested them (Config.KeepSampleDocs).
	SampleDocs [][][]string
}

// BuildSummaries runs the configured sampler against every database of
// the world and assembles the shrinkage machinery on top: probe-based
// classification where the paper uses it, category summaries
// (Definition 3), and per-database shrunk summaries via EM (Figure 2).
func (w *World) BuildSummaries(cfg Config) (*DBSummaries, error) {
	n := len(w.Bed.Databases)
	out := &DBSummaries{
		Config:   cfg,
		Unshrunk: make([]*summary.Summary, n),
		Shrunk:   make([]*core.ShrunkSummary, n),
		Class:    make([]hierarchy.NodeID, n),
		SizeEst:  make([]float64, n),
		Gamma:    make([]float64, n),
	}
	seed := synth.SubSeed(w.Scale.Seed, 100, int64(cfg.Sampler), int64(cfg.Run))
	if cfg.KeepSampleDocs {
		out.SampleDocs = make([][][]string, n)
	}

	// one processes a single database: sample, classify, estimate. Each
	// database's randomness derives from its own sub-seed, so the result
	// is identical whether databases are processed sequentially or
	// concurrently.
	one := func(i int) error {
		db := w.Bed.Databases[i]
		searcher := sampling.IndexSearcher{Ix: db.Index}
		var sample *sampling.Sample
		var class hierarchy.NodeID
		var err error
		switch cfg.Sampler {
		case QBS:
			sample, err = sampling.QBS(context.Background(), searcher, sampling.QBSConfig{
				TargetDocs:  w.Scale.SampleTarget,
				SeedLexicon: w.Lexicon,
				Seed:        synth.SubSeed(seed, int64(i)),
				Metrics:     w.Metrics,
			})
			if err != nil {
				return fmt.Errorf("QBS over %s: %w", db.Name, err)
			}
			// QBS has no classification of its own: the Web testbed
			// uses the directory's (true) classification, the TREC
			// testbeds use probe-based classification (Section 5.2).
			if w.Kind == Web {
				class = db.Category
			} else {
				class = w.Classifier.ClassifyTraced(searcher, nil, w.Metrics)
			}
		case FPS:
			// FPS derives the classification during sampling.
			sample, class, err = sampling.FPS(context.Background(), searcher, sampling.FPSConfig{
				Classifier: w.Classifier,
				Metrics:    w.Metrics,
			})
			if err != nil {
				return fmt.Errorf("FPS over %s: %w", db.Name, err)
			}
		default:
			return fmt.Errorf("experiments: unknown sampler %v", cfg.Sampler)
		}

		if cfg.KeepSampleDocs {
			out.SampleDocs[i] = sample.Docs
		}
		raw := summary.FromSample(sample.Docs)
		est, errFit := freqest.FitCheckpoints(sample.Checkpoints)
		size, errSize := freqest.EstimateSize(sample, raw)
		if errFit != nil || errSize != nil {
			// Degenerate (e.g. empty) database: keep the raw summary.
			size = raw.NumDocs
		}
		out.SizeEst[i] = size
		out.Gamma[i] = zipf.FreqPowerLawGamma(est.LawAt(size).Alpha)
		if cfg.FreqEst && errFit == nil {
			out.Unshrunk[i] = freqest.Apply(raw, est, size)
		} else {
			out.Unshrunk[i] = raw
		}
		out.Class[i] = class
		return nil
	}
	if err := forEachDatabase(n, w.Scale.Workers, one); err != nil {
		return nil, err
	}

	// Category summaries over the classified approximate summaries,
	// then one shrunk summary per database.
	classified := make([]core.Classified, n)
	for i, db := range w.Bed.Databases {
		classified[i] = core.Classified{
			Name:     db.Name,
			Category: out.Class[i],
			Sum:      out.Unshrunk[i],
		}
	}
	out.Cats = core.BuildCategorySummaries(w.Bed.Tree, classified, core.SizeWeighted)
	for i := range classified {
		out.Shrunk[i] = core.Shrink(out.Cats, classified[i], core.ShrinkOptions{Metrics: w.Metrics})
	}
	return out, nil
}

// forEachDatabase runs fn(i) for i in [0, n), fanning out over a
// bounded worker pool. workers <= 1 runs sequentially (and 0 selects
// GOMAXPROCS). Indexed writes into pre-sized slices need no locking.
// After the first error no new indices are dispatched (in-flight calls
// finish) and the first error is reported.
func forEachDatabase(n, workers int, fn func(i int) error) error {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	var (
		wg    sync.WaitGroup
		next  int64 = -1
		stop  atomic.Bool
		errMu sync.Mutex
		first error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					stop.Store(true)
					errMu.Lock()
					if first == nil {
						first = err
					}
					errMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// Classified returns the classified-summary slice (used by callers that
// need to rebuild category summaries, e.g. the ablation harness).
func (s *DBSummaries) Classified(w *World) []core.Classified {
	out := make([]core.Classified, len(s.Unshrunk))
	for i, db := range w.Bed.Databases {
		out[i] = core.Classified{Name: db.Name, Category: s.Class[i], Sum: s.Unshrunk[i]}
	}
	return out
}
