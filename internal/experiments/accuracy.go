package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/selection"
	"repro/internal/stats"
	"repro/internal/summary"
	"repro/internal/synth"
)

// Strategy is a database selection strategy of Section 6.2.
type Strategy int

const (
	// Plain scores with the unshrunk summaries (QBS-Plain / FPS-Plain).
	Plain Strategy = iota
	// Shrinkage is the paper's adaptive algorithm (Figure 3):
	// per query and per database, shrinkage is applied only when the
	// score distribution is too uncertain.
	Shrinkage
	// Hierarchical is the baseline of Ipeirotis & Gravano [17].
	Hierarchical
	// Universal always uses the shrunk summaries (the "adaptive vs
	// universal" analysis of Section 6.2).
	Universal
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Plain:
		return "Plain"
	case Shrinkage:
		return "Shrinkage"
	case Hierarchical:
		return "Hierarchical"
	case Universal:
		return "Universal"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// AccuracyResult is one curve of Figures 4-5: the mean Rk over the
// query workload for k = 1..MaxK, plus the shrinkage application rate
// of Table 10 (meaningful for the Shrinkage strategy).
type AccuracyResult struct {
	Bed      BedKind
	Sampler  SamplerKind
	Algo     string
	Strategy Strategy
	// Rk[k-1] is the mean Rk over queries.
	Rk []float64
	// ShrinkRate is the fraction of query-database pairs for which
	// shrinkage was applied (Table 10).
	ShrinkRate float64
	// Label overrides the series caption when set (used for
	// cross-algorithm comparisons like ReDDE).
	Label string
	// PerQueryMeanRk holds, per query, the mean Rk over k = 1..maxK —
	// the paired samples behind the paper's significance tests
	// ("QBS-Shrinkage improves over QBS-Plain ... statistically
	// significant (p < 0.05)", Section 6.2).
	PerQueryMeanRk []float64
}

// SeriesLabel is the caption used in figure output.
func (r AccuracyResult) SeriesLabel() string {
	if r.Label != "" {
		return r.Label
	}
	return fmt.Sprintf("%v-%v", r.Sampler, r.Strategy)
}

// MaxK is the largest k the paper's figures report.
const MaxK = 20

// SelectionAccuracy evaluates one (summaries, scorer, strategy)
// combination over the world's query workload.
func (w *World) SelectionAccuracy(sums *DBSummaries, scorer selection.Scorer, strategy Strategy, maxK int) AccuracyResult {
	res := AccuracyResult{
		Bed:      w.Kind,
		Sampler:  sums.Config.Sampler,
		Algo:     scorer.Name(),
		Strategy: strategy,
		Rk:       make([]float64, maxK),
	}
	n := len(w.Bed.Databases)
	global := sums.GlobalSummary()

	unshrunkEntries := make([]selection.Entry, n)
	for i, db := range w.Bed.Databases {
		unshrunkEntries[i] = selection.Entry{Name: db.Name, View: sums.Unshrunk[i]}
	}
	shrunkEntries := make([]selection.Entry, n)
	for i, db := range w.Bed.Databases {
		shrunkEntries[i] = selection.Entry{Name: db.Name, View: sums.Shrunk[i]}
	}

	var hier *selection.Hierarchical
	if strategy == Hierarchical {
		hier = selection.NewHierarchical(scorer, sums.Cats, sums.Classified(w))
	}
	var adaptive *selection.Adaptive
	var adbs []*selection.DB
	if strategy == Shrinkage {
		adaptive = &selection.Adaptive{
			Base: scorer,
			Opts: selection.AdaptiveOptions{
				Seed:    synth.SubSeed(w.Scale.Seed, 77),
				Metrics: w.Metrics,
			},
		}
		adbs = make([]*selection.DB, n)
		for i, db := range w.Bed.Databases {
			adbs[i] = &selection.DB{
				Name:     db.Name,
				Unshrunk: sums.Unshrunk[i],
				Shrunk:   sums.Shrunk[i],
				Gamma:    sums.Gamma[i],
				Size:     int(sums.SizeEst[i]),
			}
		}
	}

	var shrinkApplied, shrinkTotal int
	for qi, q := range w.Bed.Queries {
		var ranked []selection.Ranked
		switch strategy {
		case Plain:
			ctx := selection.NewContext(q.Terms, unshrunkEntries, global)
			ranked = selection.Rank(scorer, q.Terms, unshrunkEntries, ctx)
		case Universal:
			ctx := selection.NewContext(q.Terms, shrunkEntries, global)
			ranked = selection.Rank(scorer, q.Terms, shrunkEntries, ctx)
		case Hierarchical:
			ctx := selection.NewContext(q.Terms, unshrunkEntries, global)
			ranked = hier.Rank(q.Terms, ctx)
		case Shrinkage:
			var decisions []selection.Decision
			ranked, decisions = adaptive.Rank(q.Terms, adbs, global)
			for _, d := range decisions {
				shrinkTotal++
				if d.Shrinkage {
					shrinkApplied++
				}
			}
		}
		idx := make([]int, len(ranked))
		for i, r := range ranked {
			idx[i] = r.Index
		}
		curve := metrics.RkCurve(w.Relevant[qi], idx, maxK)
		var qMean float64
		for k := range curve {
			res.Rk[k] += curve[k]
			qMean += curve[k]
		}
		res.PerQueryMeanRk = append(res.PerQueryMeanRk, qMean/float64(len(curve)))
	}
	if nq := len(w.Bed.Queries); nq > 0 {
		for k := range res.Rk {
			res.Rk[k] /= float64(nq)
		}
	}
	if shrinkTotal > 0 {
		res.ShrinkRate = float64(shrinkApplied) / float64(shrinkTotal)
	}
	return res
}

// CompareRk runs the paired t-test between two strategies' per-query
// mean Rk values (the Section 6.2 significance analysis). Both results
// must come from the same world and query workload.
func CompareRk(a, b AccuracyResult) (stats.TTestResult, error) {
	return stats.PairedTTest(a.PerQueryMeanRk, b.PerQueryMeanRk)
}

// AccuracySweep runs the three strategies the figures compare (Plain,
// Hierarchical, Shrinkage) for one scorer over one summary set.
func (w *World) AccuracySweep(sums *DBSummaries, scorer selection.Scorer) []AccuracyResult {
	out := make([]AccuracyResult, 0, 3)
	for _, st := range []Strategy{Shrinkage, Hierarchical, Plain} {
		out = append(out, w.SelectionAccuracy(sums, scorer, st, MaxK))
	}
	return out
}

// ReDDEAccuracy evaluates the ReDDE selection algorithm of Si & Callan
// over the world's query workload — the algorithm the paper's
// footnote 9 names as future work to combine with shrinkage. The
// summaries must have been built with Config.KeepSampleDocs. ratio 0
// selects ReDDE's default.
func (w *World) ReDDEAccuracy(sums *DBSummaries, ratio float64, maxK int) (AccuracyResult, error) {
	if sums.SampleDocs == nil {
		return AccuracyResult{}, fmt.Errorf("experiments: summaries built without KeepSampleDocs")
	}
	samples := make([]selection.ReDDESample, len(w.Bed.Databases))
	for i, db := range w.Bed.Databases {
		samples[i] = selection.ReDDESample{
			Name: db.Name,
			Docs: sums.SampleDocs[i],
			Size: sums.SizeEst[i],
		}
	}
	redde, err := selection.NewReDDE(samples, ratio)
	if err != nil {
		return AccuracyResult{}, err
	}
	res := AccuracyResult{
		Bed:     w.Kind,
		Sampler: sums.Config.Sampler,
		Algo:    redde.Name(),
		Label:   fmt.Sprintf("%v-ReDDE", sums.Config.Sampler),
		Rk:      make([]float64, maxK),
	}
	for qi, q := range w.Bed.Queries {
		ranked := redde.Rank(q.Terms)
		idx := make([]int, len(ranked))
		for i, r := range ranked {
			idx[i] = r.Index
		}
		curve := metrics.RkCurve(w.Relevant[qi], idx, maxK)
		for k := range curve {
			res.Rk[k] += curve[k]
		}
	}
	if nq := len(w.Bed.Queries); nq > 0 {
		for k := range res.Rk {
			res.Rk[k] /= float64(nq)
		}
	}
	return res, nil
}

// meanRkUpTo averages an Rk curve over k = 1..k (a scalar headline for
// comparisons and tests).
func meanRkUpTo(rk []float64, k int) float64 {
	if k > len(rk) {
		k = len(rk)
	}
	var s float64
	for i := 0; i < k; i++ {
		s += rk[i]
	}
	if k == 0 {
		return 0
	}
	return s / float64(k)
}

// ensure unused helper linting does not fire before the table layer uses it.
var _ = meanRkUpTo
var _ summary.View = (*summary.Summary)(nil)
