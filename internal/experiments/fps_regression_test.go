package experiments

import (
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/metrics"
)

// Regression test: FPS probing must retrieve documents even from
// databases classified at internal categories (a Society-level site
// contains the category's shared vocabulary, not any single subtopic's)
// — probe sets that round-robin only leaf words came up empty on them,
// silently zeroing those databases' summaries.
func TestFPSSamplesInternalCategoryDatabases(t *testing.T) {
	sc := TestScale()
	sc.WebPerLeaf = 1
	sc.WebExtra = 12 // extras land on random categories incl. internal ones
	sc.WebMinSize = 150
	sc.WebMaxSize = 400
	w, err := BuildWorld(Web, sc)
	if err != nil {
		t.Fatal(err)
	}
	hasInternal := false
	for _, db := range w.Bed.Databases {
		if !w.Bed.Tree.IsLeaf(db.Category) && db.Category != hierarchy.Root {
			hasInternal = true
		}
	}
	if !hasInternal {
		t.Skip("no internal-category database drawn for this seed")
	}
	sums, err := w.BuildSummaries(Config{Sampler: FPS})
	if err != nil {
		t.Fatal(err)
	}
	for i, db := range w.Bed.Databases {
		if sums.Unshrunk[i].Len() == 0 {
			t.Errorf("FPS sampled nothing from %s (classified %s)",
				db.Name, w.Bed.Tree.PathString(db.Category))
		}
		// And unshrunk precision stays exactly 1: samples contain only
		// the database's own words.
		un := metrics.ApplyRoundRule(sums.Unshrunk[i])
		if up := metrics.UnweightedPrecision(w.Truth[i], un); up < 0.999 {
			t.Errorf("%s: unshrunk precision %.3f", db.Name, up)
		}
	}
}
