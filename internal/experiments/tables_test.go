package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestFormatQualityTable(t *testing.T) {
	rows := []QualityRow{
		{
			Bed: Web, Sampler: QBS, FreqEst: false,
			WR: QualityCell{Shrunk: 0.962, Unshrunk: 0.875, P: 0.0001},
		},
		{
			Bed: TREC4, Sampler: FPS, FreqEst: true,
			WR: QualityCell{Shrunk: 0.983, Unshrunk: 0.972, P: 0.01},
		},
	}
	out := FormatQualityTable("Table 4: Weighted recall wr", "wr", rows)
	for _, want := range []string{"Table 4", "Web", "TREC4", "QBS", "FPS", "0.962", "0.875", "0.983", "Yes", "No"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestQualityRowCellSelection(t *testing.T) {
	r := QualityRow{
		WR:   QualityCell{Shrunk: 1},
		UR:   QualityCell{Shrunk: 2},
		WP:   QualityCell{Shrunk: 3},
		UP:   QualityCell{Shrunk: 4},
		SRCC: QualityCell{Shrunk: 5},
		KL:   QualityCell{Shrunk: 6},
	}
	for metric, want := range map[string]float64{
		"wr": 1, "ur": 2, "wp": 3, "up": 4, "srcc": 5, "kl": 6, "WR": 1,
	} {
		if got := r.cell(metric).Shrunk; got != want {
			t.Errorf("cell(%q) = %v, want %v", metric, got, want)
		}
	}
	if got := r.cell("bogus"); got != (QualityCell{}) {
		t.Errorf("unknown metric returned %+v", got)
	}
}

func TestQualityMetricTitleCoversTables4To9(t *testing.T) {
	for tbl := 4; tbl <= 9; tbl++ {
		mt, ok := QualityMetricTitle[tbl]
		if !ok || mt[0] == "" || !strings.Contains(mt[1], "Table") {
			t.Errorf("table %d metadata missing: %v", tbl, mt)
		}
	}
}

func TestFormatRkSeries(t *testing.T) {
	results := []AccuracyResult{
		{Sampler: QBS, Strategy: Shrinkage, Rk: []float64{0.5, 0.6}},
		{Sampler: QBS, Strategy: Plain, Rk: []float64{0.3, 0.4}},
	}
	out := FormatRkSeries("Figure X", results)
	for _, want := range []string{"Figure X", "QBS-Shrinkage", "QBS-Plain", "0.500", "0.400"} {
		if !strings.Contains(out, want) {
			t.Errorf("series output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title + header + 2 k rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	if empty := FormatRkSeries("E", nil); !strings.Contains(empty, "E") {
		t.Error("empty series lost title")
	}
}

func TestFormatShrinkRateTable(t *testing.T) {
	rows := []ShrinkRateRow{
		{Bed: TREC6, Sampler: QBS, Algo: "LM", Rate: 0.1173},
		{Bed: TREC4, Sampler: FPS, Algo: "bGlOSS", Rate: 0.3542},
	}
	out := FormatShrinkRateTable(rows)
	if !strings.Contains(out, "35.42%") || !strings.Contains(out, "11.73%") {
		t.Errorf("rates missing:\n%s", out)
	}
	// Sorted: TREC4 before TREC6.
	if strings.Index(out, "TREC4") > strings.Index(out, "TREC6") {
		t.Errorf("rows not sorted by data set:\n%s", out)
	}
}

func TestFormatLambdaTable(t *testing.T) {
	out := FormatLambdaTable([]LambdaListing{
		{Database: "AIDS.org", Lambdas: []core.Lambda{
			{Component: "Uniform", Weight: 0.075},
			{Component: "AIDS.org", Weight: 0.421},
		}},
	})
	for _, want := range []string{"AIDS.org", "Uniform", "0.075", "0.421"} {
		if !strings.Contains(out, want) {
			t.Errorf("lambda table missing %q:\n%s", want, out)
		}
	}
}

func TestShowcaseTables(t *testing.T) {
	w := getWebWorld(t)
	t1 := w.Table1(3)
	if !strings.Contains(t1, "Table 1") || !strings.Contains(t1, "p(w|D)") {
		t.Errorf("Table 1 malformed:\n%s", t1)
	}
	t3 := w.Table3(4)
	if !strings.Contains(t3, "Table 3") || !strings.Contains(t3, "Root→") {
		t.Errorf("Table 3 malformed:\n%s", t3)
	}
	sums, err := w.BuildSummaries(Config{Sampler: QBS})
	if err != nil {
		t.Fatal(err)
	}
	listings := w.Table2Lambdas(sums, 2)
	if len(listings) != 2 {
		t.Fatalf("listings = %d", len(listings))
	}
	for _, l := range listings {
		if len(l.Lambdas) < 3 {
			t.Errorf("%s has %d components", l.Database, len(l.Lambdas))
		}
	}
}

func TestCategoryWeightingAblation(t *testing.T) {
	w := getWebWorld(t)
	sums, err := w.BuildSummaries(Config{Sampler: QBS})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	CategoryWeightingAblation(&sb, w, sums)
	out := sb.String()
	if !strings.Contains(out, "Equation 1") || !strings.Contains(out, "difference") {
		t.Errorf("ablation output malformed:\n%s", out)
	}
}

func TestMeanRkUpTo(t *testing.T) {
	rk := []float64{1, 0.5, 0.25}
	if got := meanRkUpTo(rk, 2); got != 0.75 {
		t.Errorf("meanRkUpTo = %v", got)
	}
	if got := meanRkUpTo(rk, 10); got != (1+0.5+0.25)/3 {
		t.Errorf("meanRkUpTo beyond length = %v", got)
	}
	if got := meanRkUpTo(nil, 3); got != 0 {
		t.Errorf("empty = %v", got)
	}
}

func TestFormatRkCSV(t *testing.T) {
	results := []AccuracyResult{
		{Sampler: QBS, Strategy: Shrinkage, Rk: []float64{0.5, 0.625}},
		{Sampler: QBS, Algo: "ReDDE", Label: "QBS-ReDDE", Rk: []float64{0.25, 0.375}},
	}
	out := FormatRkCSV("Fig", results)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[1] != "k,QBS-Shrinkage,QBS-ReDDE" {
		t.Errorf("header = %q", lines[1])
	}
	if lines[2] != "1,0.5000,0.2500" {
		t.Errorf("row = %q", lines[2])
	}
}

func TestMCStabilityOutput(t *testing.T) {
	w := getTRECWorld(t)
	sums, err := w.BuildSummaries(Config{Sampler: QBS, FreqEst: true})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	MCStability(&sb, w, sums)
	out := sb.String()
	if !strings.Contains(out, "combos") || !strings.Contains(out, "%") {
		t.Errorf("mc-stability output malformed:\n%s", out)
	}
	// Six budget rows plus the header.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 7 {
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	// Agreement percentages parse as 0..100 and the largest budget is
	// the most faithful to the reference.
	for _, line := range lines[1:] {
		if !strings.HasSuffix(line, "%") {
			t.Errorf("row %q missing %%", line)
		}
	}
}
