// Package experiments assembles the paper's evaluation end to end: it
// builds the three testbeds (Web, TREC4, TREC6; Section 5.1), runs the
// content-summary construction strategies (QBS/FPS × frequency
// estimation × shrinkage; Section 5.2), and regenerates every table and
// figure of the evaluation (Section 6).
package experiments

import (
	"fmt"

	"repro/internal/classify"
	"repro/internal/hierarchy"
	"repro/internal/summary"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

// BedKind selects one of the paper's three data sets.
type BedKind int

const (
	// Web is the 315-database web testbed (databases classified by the
	// directory; wide size spread).
	Web BedKind = iota
	// TREC4 is the 100-database clustered testbed with long queries
	// (8-34 words).
	TREC4
	// TREC6 is the 100-database clustered testbed with short queries
	// (2-5 words).
	TREC6
)

// String implements fmt.Stringer.
func (k BedKind) String() string {
	switch k {
	case Web:
		return "Web"
	case TREC4:
		return "TREC4"
	case TREC6:
		return "TREC6"
	}
	return fmt.Sprintf("BedKind(%d)", int(k))
}

// Scale sets the testbed sizes. The paper's absolute scale (hundreds of
// thousands of documents per testbed) is reduced ~10× so the full
// evaluation runs on one core in minutes; all database *counts* match
// the paper.
type Scale struct {
	// Web testbed: PerLeaf databases per leaf plus Extra, sizes
	// log-uniform in [WebMinSize, WebMaxSize].
	WebPerLeaf, WebExtra   int
	WebMinSize, WebMaxSize int
	// TREC-style testbeds: pool size and database (cluster) count.
	TRECPool, TRECDatabases int
	ClusterFeatures         int
	ClusterIters            int
	// Queries per workload and sampling parameters.
	Queries          int
	SampleTarget     int // QBS sample size (paper: 300)
	QBSRuns          int // samples averaged per database (paper: 5)
	TrainDocsPerLeaf int // classifier training set size
	// Generator vocabulary scale.
	GlobalVocab, CategoryVocab int
	// Workers bounds the per-database concurrency of summary
	// construction: 0 = GOMAXPROCS, 1 = sequential. Results are
	// identical either way (every database has its own sub-seed).
	Workers int
	Seed    int64
}

// DefaultScale is the laptop-scale default used by cmd/experiments and
// the benchmark harness.
func DefaultScale() Scale {
	return Scale{
		WebPerLeaf: 5, WebExtra: 45,
		WebMinSize: 100, WebMaxSize: 2500,
		// 100k pool documents over 100 databases gives ~1000 docs per
		// database, so the 300-document samples are genuinely
		// incomplete (the paper's TREC4 databases average ~5700 docs).
		TRECPool: 100000, TRECDatabases: 100,
		ClusterFeatures: 1200, ClusterIters: 6,
		Queries:          50,
		SampleTarget:     300,
		QBSRuns:          3,
		TrainDocsPerLeaf: 60,
		GlobalVocab:      6000,
		CategoryVocab:    2600,
		Seed:             1,
	}
}

// TestScale is a miniature configuration for unit tests.
func TestScale() Scale {
	return Scale{
		WebPerLeaf: 1, WebExtra: 2,
		WebMinSize: 60, WebMaxSize: 250,
		TRECPool: 1500, TRECDatabases: 8,
		ClusterFeatures: 400, ClusterIters: 5,
		Queries:          8,
		SampleTarget:     60,
		QBSRuns:          1,
		TrainDocsPerLeaf: 25,
		GlobalVocab:      1200,
		CategoryVocab:    700,
		Seed:             1,
	}
}

// World is one fully built testbed with everything the experiments
// need: the databases, the query workload with relevance judgments, the
// trained probe classifier, the QBS seed lexicon, and the perfect
// content summaries (the evaluation ground truth).
type World struct {
	Kind       BedKind
	Scale      Scale
	Bed        *synth.Testbed
	Classifier *classify.Classifier
	Lexicon    []string
	Truth      []*summary.Summary // per database, S(D)
	Relevant   [][]int            // [query][db] = r(q, D)
	// Metrics, when non-nil, receives pipeline counters from summary
	// construction and selection (sampling_queries_total, em_*,
	// adaptive_*); cmd/experiments sets it to print a telemetry summary
	// after each run. Nil disables metric collection at zero cost.
	Metrics *telemetry.Registry
}

// BuildWorld generates a testbed of the given kind at the given scale.
// Everything is deterministic in Scale.Seed.
func BuildWorld(kind BedKind, sc Scale) (*World, error) {
	tree := hierarchy.Default()
	gen, err := synth.NewGenerator(synth.Config{
		Tree:              tree,
		Seed:              sc.Seed,
		GlobalVocabSize:   sc.GlobalVocab,
		CategoryVocabBase: sc.CategoryVocab,
	})
	if err != nil {
		return nil, err
	}

	var bed *synth.Testbed
	var qspec synth.QuerySpec
	switch kind {
	case Web:
		bed, err = synth.BuildWeb(gen, synth.WebConfig{
			PerLeaf: sc.WebPerLeaf, Extra: sc.WebExtra,
			MinSize: sc.WebMinSize, MaxSize: sc.WebMaxSize,
			Seed: sc.Seed + 10,
		})
		qspec = synth.TREC6QuerySpec(sc.Seed + 20) // web workload: short queries
	case TREC4:
		bed, err = synth.BuildTRECStyle(gen, synth.TRECConfig{
			Name: "TREC4", PoolDocs: sc.TRECPool, Databases: sc.TRECDatabases,
			ClusterFeatures: sc.ClusterFeatures, ClusterIters: sc.ClusterIters, Seed: sc.Seed + 11,
		})
		qspec = synth.TREC4QuerySpec(sc.Seed + 21)
	case TREC6:
		bed, err = synth.BuildTRECStyle(gen, synth.TRECConfig{
			Name: "TREC6", PoolDocs: sc.TRECPool, Databases: sc.TRECDatabases,
			ClusterFeatures: sc.ClusterFeatures, ClusterIters: sc.ClusterIters, Seed: sc.Seed + 12,
		})
		qspec = synth.TREC6QuerySpec(sc.Seed + 22)
	default:
		return nil, fmt.Errorf("experiments: unknown bed kind %v", kind)
	}
	if err != nil {
		return nil, err
	}

	qspec.Count = sc.Queries
	// Scale the minimum relevant-document requirement with the testbed:
	// tiny test corpora cannot support the paper-scale threshold.
	qspec.MinRelevant = bed.TotalDocs() / 2000
	if qspec.MinRelevant < 3 {
		qspec.MinRelevant = 3
	}
	if qspec.MinRelevant > 10 {
		qspec.MinRelevant = 10
	}
	if err := synth.GenQueries(bed, qspec); err != nil {
		return nil, err
	}

	// Train the probe classifier from per-leaf example documents — the
	// role QProber's ODP training data plays in the paper.
	ts := &classify.TrainingSet{}
	trainRNG := synth.SubRNG(sc.Seed, 31)
	for _, leaf := range tree.Leaves() {
		src := gen.NewDocSource(leaf, nil, trainRNG)
		var buf []string
		for i := 0; i < sc.TrainDocsPerLeaf; i++ {
			buf = src.GenDoc(trainRNG, buf)
			ts.Add(leaf, buf)
		}
	}
	// QProber's real classifiers carry hundreds of rules per category;
	// a richer probe set matters for FPS, whose sample size is the
	// number of probes times the docs retrieved per probe.
	cls, err := classify.Train(tree, ts, classify.Options{ProbesPerCategory: 25})
	if err != nil {
		return nil, err
	}

	w := &World{
		Kind:       kind,
		Scale:      sc,
		Bed:        bed,
		Classifier: cls,
		Lexicon:    lexicon(gen, 400),
	}

	// Ground truth: perfect summaries and relevance judgments.
	w.Truth = make([]*summary.Summary, len(bed.Databases))
	for i, db := range bed.Databases {
		w.Truth[i] = summary.FromIndex(db.Index)
	}
	w.Relevant = make([][]int, len(bed.Queries))
	for qi, q := range bed.Queries {
		row := make([]int, len(bed.Databases))
		for di, db := range bed.Databases {
			row[di] = q.RelevantIn(db)
		}
		w.Relevant[qi] = row
	}
	return w, nil
}

// lexicon returns the head of the global vocabulary, standing in for
// the English dictionary QBS draws bootstrap queries from.
func lexicon(gen *synth.Generator, n int) []string {
	v := gen.GlobalVocab()
	if n > v.Len() {
		n = v.Len()
	}
	out := make([]string, n)
	for i := range out {
		out[i] = v.Word(i)
	}
	return out
}
