package sampling

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/classify"
	"repro/internal/hierarchy"
	"repro/internal/index"
	"repro/internal/summary"
	"repro/internal/synth"
)

func testWorld(t testing.TB, seed int64) (*hierarchy.Tree, *synth.Generator) {
	t.Helper()
	tree := hierarchy.MustNew(hierarchy.Spec{
		Name: "Root",
		Children: []hierarchy.Spec{
			{Name: "Health", Children: []hierarchy.Spec{
				{Name: "Heart"}, {Name: "Cancer"},
			}},
			{Name: "Sports", Children: []hierarchy.Spec{
				{Name: "Soccer"}, {Name: "Tennis"},
			}},
		},
	})
	g, err := synth.NewGenerator(synth.Config{
		Tree:              tree,
		Seed:              seed,
		GlobalVocabSize:   600,
		CategoryVocabBase: 400,
		PrivateVocabSize:  60,
		DocLenMean:        60,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tree, g
}

func buildDB(t testing.TB, g *synth.Generator, catName string, size int, seed int64) *index.Index {
	t.Helper()
	cat, ok := g.Tree().Lookup(catName)
	if !ok {
		t.Fatalf("no category %s", catName)
	}
	rng := rand.New(rand.NewSource(seed))
	priv, err := g.NewPrivateVocab("p_")
	if err != nil {
		t.Fatal(err)
	}
	src := g.NewDocSource(cat, priv, rng)
	b := index.NewBuilder(size)
	var buf []string
	for i := 0; i < size; i++ {
		buf = src.GenDoc(rng, buf)
		b.Add(buf)
	}
	return b.Build()
}

// seedLexicon returns head words of the global vocabulary, standing in
// for the English dictionary QBS bootstraps from.
func seedLexicon(g *synth.Generator, n int) []string {
	v := g.GlobalVocab()
	if n > v.Len() {
		n = v.Len()
	}
	out := make([]string, n)
	for i := range out {
		out[i] = v.Word(i)
	}
	return out
}

func TestQBSRequiresLexicon(t *testing.T) {
	_, g := testWorld(t, 1)
	db := buildDB(t, g, "Heart", 50, 2)
	if _, err := QBS(context.Background(), IndexSearcher{db}, QBSConfig{}); err == nil {
		t.Fatal("missing lexicon accepted")
	}
}

func TestQBSSamplesTargetDocs(t *testing.T) {
	_, g := testWorld(t, 2)
	db := buildDB(t, g, "Heart", 800, 3)
	s, err := QBS(context.Background(), IndexSearcher{db}, QBSConfig{
		TargetDocs:  100,
		SeedLexicon: seedLexicon(g, 100),
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Docs) != 100 {
		t.Errorf("sampled %d docs, want 100", len(s.Docs))
	}
	if s.Queries == 0 {
		t.Error("no queries recorded")
	}
	if len(s.QueryDF) == 0 {
		t.Error("no query match counts recorded")
	}
	if len(s.Checkpoints) == 0 {
		t.Error("no Mandelbrot checkpoints recorded")
	}
	last := s.Checkpoints[len(s.Checkpoints)-1]
	if last.Size != 100 {
		t.Errorf("terminal checkpoint size = %d", last.Size)
	}
	if last.Law.Alpha >= 0 {
		t.Errorf("fitted alpha = %v, want negative", last.Law.Alpha)
	}
}

func TestQBSNoDuplicateDocs(t *testing.T) {
	_, g := testWorld(t, 3)
	db := buildDB(t, g, "Soccer", 400, 4)
	s, err := QBS(context.Background(), IndexSearcher{db}, QBSConfig{
		TargetDocs:  150,
		SeedLexicon: seedLexicon(g, 100),
		Seed:        8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The sample cannot exceed the database and QueryDF must hold true
	// df values for probed words.
	if len(s.Docs) > 400 {
		t.Errorf("sampled more docs than exist")
	}
	for w, m := range s.QueryDF {
		if got := db.DocFreq(w); got != m {
			t.Errorf("QueryDF[%s] = %d, true df = %d", w, m, got)
		}
	}
}

func TestQBSSmallDatabaseExhausts(t *testing.T) {
	_, g := testWorld(t, 4)
	db := buildDB(t, g, "Tennis", 25, 5)
	s, err := QBS(context.Background(), IndexSearcher{db}, QBSConfig{
		TargetDocs:  300,
		SeedLexicon: seedLexicon(g, 100),
		MaxBarren:   60,
		Seed:        9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Docs) == 0 {
		t.Fatal("nothing sampled from small database")
	}
	if len(s.Docs) > 25 {
		t.Errorf("sampled %d docs from a 25-doc database", len(s.Docs))
	}
}

func TestQBSEmptyDatabase(t *testing.T) {
	empty := index.NewBuilder(0).Build()
	_, g := testWorld(t, 5)
	s, err := QBS(context.Background(), IndexSearcher{empty}, QBSConfig{
		SeedLexicon: seedLexicon(g, 50),
		MaxBarren:   30,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Docs) != 0 {
		t.Errorf("sampled %d docs from empty database", len(s.Docs))
	}
}

func TestQBSDeterministic(t *testing.T) {
	_, g := testWorld(t, 6)
	db := buildDB(t, g, "Cancer", 300, 6)
	cfg := QBSConfig{TargetDocs: 80, SeedLexicon: seedLexicon(g, 100), Seed: 42}
	s1, err := QBS(context.Background(), IndexSearcher{db}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := QBS(context.Background(), IndexSearcher{db}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.Docs) != len(s2.Docs) || s1.Queries != s2.Queries {
		t.Fatalf("nondeterministic sampling: %d/%d docs, %d/%d queries",
			len(s1.Docs), len(s2.Docs), s1.Queries, s2.Queries)
	}
}

func TestQBSSampleMissesRareWords(t *testing.T) {
	// The sparse-data problem the paper is built on: a 100-doc sample of
	// a 1000-doc database misses a substantial part of the vocabulary.
	_, g := testWorld(t, 7)
	db := buildDB(t, g, "Heart", 1000, 7)
	s, err := QBS(context.Background(), IndexSearcher{db}, QBSConfig{
		TargetDocs:  100,
		SeedLexicon: seedLexicon(g, 100),
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := summary.FromSample(s.Docs)
	truth := summary.FromIndex(db)
	missing := 0
	for w := range truth.Words {
		if !sum.Contains(w) {
			missing++
		}
	}
	frac := float64(missing) / float64(truth.Len())
	if frac < 0.10 {
		t.Errorf("sample missed only %.1f%% of vocabulary; testbed too easy", 100*frac)
	}
}

func trainClassifier(t testing.TB, tree *hierarchy.Tree, g *synth.Generator) *classify.Classifier {
	t.Helper()
	ts := &classify.TrainingSet{}
	rng := rand.New(rand.NewSource(99))
	for _, leaf := range tree.Leaves() {
		src := g.NewDocSource(leaf, nil, rng)
		var buf []string
		for i := 0; i < 50; i++ {
			buf = src.GenDoc(rng, buf)
			ts.Add(leaf, buf)
		}
	}
	c, err := classify.Train(tree, ts, classify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFPSRequiresClassifier(t *testing.T) {
	_, g := testWorld(t, 8)
	db := buildDB(t, g, "Heart", 50, 2)
	if _, _, err := FPS(context.Background(), IndexSearcher{db}, FPSConfig{}); err == nil {
		t.Fatal("missing classifier accepted")
	}
}

func TestFPSSamplesAndClassifies(t *testing.T) {
	tree, g := testWorld(t, 9)
	c := trainClassifier(t, tree, g)
	db := buildDB(t, g, "Heart", 600, 11)
	s, cat, err := FPS(context.Background(), IndexSearcher{db}, FPSConfig{Classifier: c})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Docs) == 0 {
		t.Fatal("FPS sampled nothing")
	}
	heart, _ := tree.Lookup("Heart")
	health, _ := tree.Lookup("Health")
	if cat != heart && cat != health {
		t.Errorf("classified under %s, want Heart (or its parent)", tree.Node(cat).Name)
	}
	if len(s.Checkpoints) == 0 {
		t.Error("no checkpoints recorded")
	}
}

func TestFPSFocusesQueriesOnTopic(t *testing.T) {
	// FPS should issue more probes for the database's topic subtree
	// than for unrelated subtrees: probing only recurses where matches
	// are generated. We check via the sample's topical composition.
	tree, g := testWorld(t, 10)
	c := trainClassifier(t, tree, g)
	db := buildDB(t, g, "Soccer", 600, 12)
	s, _, err := FPS(context.Background(), IndexSearcher{db}, FPSConfig{Classifier: c})
	if err != nil {
		t.Fatal(err)
	}
	// Every probed word with a positive match count must exist in db.
	for w, m := range s.QueryDF {
		if m != db.DocFreq(w) {
			t.Errorf("QueryDF[%s] = %d, want %d", w, m, db.DocFreq(w))
		}
	}
}

func TestFPSEmptyDatabaseClassifiesAtRoot(t *testing.T) {
	tree, g := testWorld(t, 11)
	c := trainClassifier(t, tree, g)
	empty := index.NewBuilder(0).Build()
	s, cat, err := FPS(context.Background(), IndexSearcher{empty}, FPSConfig{Classifier: c})
	if err != nil {
		t.Fatal(err)
	}
	if cat != hierarchy.Root {
		t.Errorf("empty database classified under %v", cat)
	}
	if len(s.Docs) != 0 {
		t.Error("sampled docs from empty database")
	}
}

func TestIndexSearcherAdapters(t *testing.T) {
	b := index.NewBuilder(2)
	b.Add([]string{"a", "b"})
	b.Add([]string{"a"})
	ix := b.Build()
	s := IndexSearcher{ix}
	ctx := context.Background()
	matches, ids, err := s.Query(ctx, []string{"a"}, 10)
	if err != nil || matches != 2 || len(ids) != 2 {
		t.Errorf("Query = %d matches, %d ids, err %v", matches, len(ids), err)
	}
	if got := s.MatchCount([]string{"b"}); got != 1 {
		t.Errorf("MatchCount = %d", got)
	}
	doc, err := s.Fetch(ctx, ids[0])
	if err != nil || len(doc) == 0 {
		t.Errorf("Fetch = %v, err %v", doc, err)
	}
}

// plainIndex exposes an index through the pre-context PlainSearcher
// shape, standing in for legacy Searcher implementations.
type plainIndex struct{ ix *index.Index }

func (p plainIndex) Query(terms []string, limit int) (int, []index.DocID) {
	matches, top := p.ix.Search(terms, limit)
	ids := make([]index.DocID, len(top))
	for i, r := range top {
		ids[i] = r.Doc
	}
	return matches, ids
}

func (p plainIndex) Fetch(id index.DocID) []string { return p.ix.Doc(id) }

func TestPlainShimSamplesLikeNative(t *testing.T) {
	_, g := testWorld(t, 30)
	db := buildDB(t, g, "Heart", 300, 31)
	cfg := QBSConfig{TargetDocs: 50, SeedLexicon: seedLexicon(g, 100), Seed: 5}
	native, err := QBS(context.Background(), IndexSearcher{db}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	shimmed, err := QBS(context.Background(), Plain(plainIndex{db}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(native.Docs) != len(shimmed.Docs) || native.Queries != shimmed.Queries {
		t.Errorf("shim diverged: %d/%d docs, %d/%d queries",
			len(native.Docs), len(shimmed.Docs), native.Queries, shimmed.Queries)
	}
}

func TestPlainShimHonorsCancellation(t *testing.T) {
	_, g := testWorld(t, 32)
	db := buildDB(t, g, "Heart", 300, 33)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := QBS(ctx, Plain(plainIndex{db}), QBSConfig{
		TargetDocs: 50, SeedLexicon: seedLexicon(g, 100), Seed: 5,
	})
	if err != context.Canceled {
		t.Fatalf("QBS under canceled ctx = %v, want context.Canceled", err)
	}
}

// flakySearcher fails every n-th Query with a transient error.
type flakySearcher struct {
	Searcher
	n     int
	calls int
	fails int
}

func (f *flakySearcher) Query(ctx context.Context, terms []string, limit int) (int, []index.DocID, error) {
	f.calls++
	if f.calls%f.n == 0 {
		f.fails++
		return 0, nil, errors.New("transient node failure")
	}
	return f.Searcher.Query(ctx, terms, limit)
}

func TestQBSSurvivesTransientQueryFailures(t *testing.T) {
	_, g := testWorld(t, 34)
	db := buildDB(t, g, "Cancer", 500, 35)
	flaky := &flakySearcher{Searcher: IndexSearcher{db}, n: 4} // 25% failure
	s, err := QBS(context.Background(), flaky, QBSConfig{
		TargetDocs:  80,
		SeedLexicon: seedLexicon(g, 100),
		Seed:        6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if flaky.fails == 0 {
		t.Fatal("no failures injected")
	}
	if len(s.Docs) != 80 {
		t.Errorf("sampled %d docs despite retries available, want 80", len(s.Docs))
	}
}

func BenchmarkQBS(b *testing.B) {
	_, g := testWorld(b, 12)
	db := buildDB(b, g, "Heart", 1000, 13)
	lex := seedLexicon(g, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := QBS(context.Background(), IndexSearcher{db}, QBSConfig{
			TargetDocs: 100, SeedLexicon: lex, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestQBSResampleProbes(t *testing.T) {
	_, g := testWorld(t, 20)
	db := buildDB(t, g, "Heart", 500, 21)
	s, err := QBS(context.Background(), IndexSearcher{db}, QBSConfig{
		TargetDocs:     60,
		SeedLexicon:    seedLexicon(g, 100),
		ResampleProbes: 5,
		Seed:           22,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.ResampleDF) != 5 {
		t.Fatalf("resample probes = %d, want 5", len(s.ResampleDF))
	}
	for w, df := range s.ResampleDF {
		if got := db.DocFreq(w); got != df {
			t.Errorf("ResampleDF[%s] = %d, true df %d", w, df, got)
		}
		// Resample words are frequent sample words (that is the point).
		if df < 2 {
			t.Errorf("resample word %s has df %d; expected a frequent word", w, df)
		}
	}
}

func TestFPSResampleProbes(t *testing.T) {
	tree, g := testWorld(t, 23)
	c := trainClassifier(t, tree, g)
	db := buildDB(t, g, "Cancer", 400, 24)
	s, _, err := FPS(context.Background(), IndexSearcher{db}, FPSConfig{Classifier: c, ResampleProbes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Docs) == 0 {
		t.Skip("FPS sampled nothing for this seed")
	}
	if len(s.ResampleDF) != 4 {
		t.Fatalf("resample probes = %d, want 4", len(s.ResampleDF))
	}
}

func TestQBSExactTargetNoOvershoot(t *testing.T) {
	_, g := testWorld(t, 25)
	db := buildDB(t, g, "Soccer", 600, 26)
	for _, target := range []int{37, 50, 99} {
		s, err := QBS(context.Background(), IndexSearcher{db}, QBSConfig{
			TargetDocs:  target,
			SeedLexicon: seedLexicon(g, 100),
			Seed:        int64(target),
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Docs) != target {
			t.Errorf("target %d: sampled %d", target, len(s.Docs))
		}
	}
}
