// Package sampling implements the two document-sampling algorithms the
// paper evaluates for content-summary construction (Section 5.2):
//
//   - QBS, query-based sampling as presented by Callan & Connell: random
//     single-word queries bootstrap the sample, then further queries are
//     drawn from the words of retrieved documents, four previously
//     unseen documents per query, until 300 documents are sampled (or
//     500 consecutive queries retrieve nothing new).
//   - FPS, focused probing as presented by Ipeirotis & Gravano: queries
//     derive from a hierarchical classifier's probes, so they are
//     associated with topics; probing recurses into a category's
//     subcategories when the category's probes generate enough matches,
//     and the sampler outputs a database classification as a by-product.
//
// Samplers interact with a database only through the Searcher
// interface — the number of matches for a query and the top-ranked
// documents — which is exactly what a remote, uncooperative web
// database exposes. The interface is context-aware and fallible,
// because the database is usually at the other end of a network:
// cancelling the context aborts a sampling run (and its in-flight
// probes), while transient per-call failures are tolerated — a failed
// query retrieves nothing and sampling moves on, mirroring how a
// metasearcher really behaves against a flaky node.
package sampling

import (
	"context"
	"math/rand"
	"sort"

	"repro/internal/index"
	"repro/internal/telemetry"
	"repro/internal/zipf"
)

// Searcher is the query interface of an uncooperative database.
// Implementations backed by a network return errors for failed calls
// and honor context cancellation; in-process implementations may ignore
// the context and return nil errors.
type Searcher interface {
	// Query evaluates a conjunctive query, returning the total number
	// of matching documents and the top `limit` ranked matches.
	Query(ctx context.Context, terms []string, limit int) (matches int, top []index.DocID, err error)
	// Fetch returns the terms of one document.
	Fetch(ctx context.Context, id index.DocID) ([]string, error)
}

// PlainSearcher is the pre-context Searcher shape: infallible,
// synchronous, no cancellation. Kept as a compatibility shim for
// in-process databases; adapt one with Plain.
type PlainSearcher interface {
	Query(terms []string, limit int) (matches int, top []index.DocID)
	Fetch(id index.DocID) []string
}

// Plain adapts a PlainSearcher to the context-aware Searcher interface.
// The adapter honors cancellation between calls (a canceled context
// fails the next call before it reaches the database).
func Plain(db PlainSearcher) Searcher { return plainAdapter{db} }

type plainAdapter struct{ db PlainSearcher }

func (a plainAdapter) Query(ctx context.Context, terms []string, limit int) (int, []index.DocID, error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	matches, top := a.db.Query(terms, limit)
	return matches, top, nil
}

func (a plainAdapter) Fetch(ctx context.Context, id index.DocID) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return a.db.Fetch(id), nil
}

// IndexSearcher adapts an index.Index to Searcher.
type IndexSearcher struct {
	Ix *index.Index
}

// Query implements Searcher.
func (s IndexSearcher) Query(ctx context.Context, terms []string, limit int) (int, []index.DocID, error) {
	matches, top := s.Ix.Search(terms, limit)
	ids := make([]index.DocID, len(top))
	for i, r := range top {
		ids[i] = r.Doc
	}
	return matches, ids, nil
}

// Fetch implements Searcher.
func (s IndexSearcher) Fetch(ctx context.Context, id index.DocID) ([]string, error) {
	return s.Ix.Doc(id), nil
}

// MatchCount makes IndexSearcher usable as a classify.Prober too.
func (s IndexSearcher) MatchCount(terms []string) int { return s.Ix.MatchCount(terms) }

// Checkpoint records a Mandelbrot law fitted to the sample's
// rank/document-frequency curve when the sample had Size documents.
// The Appendix A frequency-estimation technique regresses these
// parameters against sample size.
type Checkpoint struct {
	Size int
	Law  zipf.Mandelbrot
}

// Sample is the outcome of a sampling run.
type Sample struct {
	// Docs holds the terms of each sampled document.
	Docs [][]string
	// QueryDF records, for every single-word query issued, the exact
	// number of matches the database reported — the word's true
	// document frequency.
	QueryDF map[string]int
	// ResampleDF holds the match counts of the dedicated sample–resample
	// probes (frequent sample words queried after sampling finished);
	// size estimation prefers these because sampling-phase query words
	// are self-selecting.
	ResampleDF map[string]int
	// Checkpoints are the Mandelbrot fits collected during sampling.
	Checkpoints []Checkpoint
	// Queries is the total number of queries issued.
	Queries int
}

// accumulator gathers retrieved documents, sample document frequencies,
// and periodic Mandelbrot fits.
type accumulator struct {
	sample     Sample
	seen       map[index.DocID]bool
	df         map[string]int
	vocab      []string // distinct sample words in first-seen order
	checkEvery int
	nextCheck  int

	// telemetry (all nil-safe)
	span    *telemetry.Span
	queries *telemetry.Counter
	fetched *telemetry.Counter
}

func newAccumulator(checkEvery int, span *telemetry.Span, reg *telemetry.Registry) *accumulator {
	if checkEvery <= 0 {
		checkEvery = 50
	}
	return &accumulator{
		seen:       make(map[index.DocID]bool),
		df:         make(map[string]int),
		checkEvery: checkEvery,
		nextCheck:  checkEvery,
		span:       span,
		queries:    reg.Counter("sampling_queries_total"),
		fetched:    reg.Counter("sampling_docs_fetched_total"),
	}
}

// add ingests newly retrieved documents, skipping ones already sampled,
// and returns how many were new. A document whose fetch fails is
// dropped (transient remote failure); fetches stop early once the
// context is done.
func (a *accumulator) add(ctx context.Context, db Searcher, ids []index.DocID, max int) int {
	added := 0
	for _, id := range ids {
		if added >= max {
			break
		}
		if a.seen[id] {
			continue
		}
		a.seen[id] = true
		a.fetched.Inc()
		doc, err := db.Fetch(ctx, id)
		if err != nil {
			a.span.Event("sampling.fetch_error",
				telemetry.Int("doc", int(id)), telemetry.String("error", err.Error()))
			if ctx.Err() != nil {
				return added
			}
			continue
		}
		owned := make([]string, len(doc))
		copy(owned, doc)
		a.sample.Docs = append(a.sample.Docs, owned)
		distinct := make(map[string]bool, len(doc))
		for _, w := range doc {
			if !distinct[w] {
				distinct[w] = true
				if a.df[w] == 0 {
					a.vocab = append(a.vocab, w)
				}
				a.df[w]++
			}
		}
		added++
		if len(a.sample.Docs) >= a.nextCheck {
			a.checkpoint()
			a.nextCheck += a.checkEvery
		}
	}
	return added
}

// checkpoint fits a Mandelbrot law to the current sample df curve.
// The balanced fit keeps the head of the curve faithful (Appendix A's
// estimates depend on extrapolating it).
func (a *accumulator) checkpoint() {
	law, err := zipf.FitCountsBalanced(a.df)
	if err != nil {
		return // too little data; skip this checkpoint
	}
	a.sample.Checkpoints = append(a.sample.Checkpoints, Checkpoint{
		Size: len(a.sample.Docs),
		Law:  law,
	})
	// One trace event per checkpoint round: the vocabulary-growth curve
	// of the sampling run (documents in, distinct words out).
	a.span.Event("sampling.round",
		telemetry.Int("docs", len(a.sample.Docs)),
		telemetry.Int("vocab", len(a.vocab)),
		telemetry.Int("queries", a.sample.Queries))
}

// finish finalizes the sample, ensuring a terminal checkpoint exists
// and issuing the sample–resample probes of Si & Callan: the match
// counts of a few frequent sample words, queried once sampling is done.
// Frequent words are the reliable resample anchors — rare probed words
// are self-selecting (their own query pulled their documents into the
// sample, so df ≈ sample df and the size estimate collapses to |S|).
// A failed resample probe is skipped (the estimator works with fewer).
func (a *accumulator) finish(ctx context.Context, db Searcher, resampleProbes int) *Sample {
	n := len(a.sample.Docs)
	if n > 0 && (len(a.sample.Checkpoints) == 0 ||
		a.sample.Checkpoints[len(a.sample.Checkpoints)-1].Size != n) {
		a.checkpoint()
	}
	if db != nil && resampleProbes > 0 && n > 0 {
		if a.sample.QueryDF == nil {
			a.sample.QueryDF = make(map[string]int)
		}
		if a.sample.ResampleDF == nil {
			a.sample.ResampleDF = make(map[string]int)
		}
		for _, w := range a.topWordsByDF(resampleProbes) {
			if ctx.Err() != nil {
				break
			}
			a.sample.Queries++
			a.queries.Inc()
			matches, _, err := db.Query(ctx, []string{w}, 0)
			if err != nil {
				continue
			}
			a.sample.QueryDF[w] = matches
			a.sample.ResampleDF[w] = matches
		}
	}
	return &a.sample
}

// topWordsByDF returns the n most document-frequent sample words
// (deterministically tie-broken by first-seen order).
func (a *accumulator) topWordsByDF(n int) []string {
	words := make([]string, len(a.vocab))
	copy(words, a.vocab)
	sort.SliceStable(words, func(i, j int) bool {
		return a.df[words[i]] > a.df[words[j]]
	})
	if n < len(words) {
		words = words[:n]
	}
	return words
}

// vocabulary returns the sample's distinct words in deterministic
// (first-seen) order. The returned slice must not be modified.
func (a *accumulator) vocabulary() []string { return a.vocab }

// drawUnusedWord picks a random sample word not yet used as a query.
func drawUnusedWord(vocab []string, used map[string]bool, rng *rand.Rand) (string, bool) {
	if len(vocab) == 0 {
		return "", false
	}
	for attempt := 0; attempt < 50; attempt++ {
		w := vocab[rng.Intn(len(vocab))]
		if !used[w] {
			return w, true
		}
	}
	// Fall back to a scan so exhaustion is detected deterministically.
	start := rng.Intn(len(vocab))
	for i := 0; i < len(vocab); i++ {
		w := vocab[(start+i)%len(vocab)]
		if !used[w] {
			return w, true
		}
	}
	return "", false
}
