package sampling

import (
	"context"
	"errors"

	"repro/internal/classify"
	"repro/internal/hierarchy"
	"repro/internal/telemetry"
)

// FPSConfig parameterizes focused probing.
type FPSConfig struct {
	// Classifier supplies the topic-associated probe queries and the
	// coverage/specificity descent rule (required).
	Classifier *classify.Classifier
	// DocsPerQuery is the maximum number of previously unseen documents
	// retrieved per probe (default 4, as in the paper).
	DocsPerQuery int
	// RetrieveLimit is the ranked-result window requested per probe
	// (default 40).
	RetrieveLimit int
	// TauSpecificity and TauCoverage gate the recursion into a
	// category's subcategories (defaults 0.45 and 10, matching the
	// classifier's thresholds).
	TauSpecificity float64
	TauCoverage    int
	// CheckpointEvery controls Mandelbrot-fit checkpoints (default 50).
	CheckpointEvery int
	// ResampleProbes is the number of sample–resample queries issued
	// after sampling for size estimation (default 5, per Si & Callan).
	ResampleProbes int
	// Span receives trace events (probe rounds, vocabulary growth);
	// Metrics receives the sampling counters. Both may be nil.
	Span    *telemetry.Span
	Metrics *telemetry.Registry
}

func (c FPSConfig) withDefaults() FPSConfig {
	if c.DocsPerQuery == 0 {
		c.DocsPerQuery = 4
	}
	if c.RetrieveLimit == 0 {
		c.RetrieveLimit = 40
	}
	if c.TauSpecificity == 0 {
		c.TauSpecificity = 0.45
	}
	if c.TauCoverage == 0 {
		c.TauCoverage = 10
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 50
	}
	if c.ResampleProbes == 0 {
		c.ResampleProbes = 5
	}
	return c
}

// FPS runs focused probing (Ipeirotis & Gravano) against db. Starting
// at the root, it sends every child category's probe queries, retrieves
// the top unseen documents for each, and recurses into the
// subcategories of every child whose probes generated enough matches
// (coverage >= TauCoverage and specificity >= TauSpecificity). The
// output is both the document sample and the database's classification:
// the chain of best qualifying children, exactly one category, as the
// paper's adapted technique produces (Section 5.2).
//
// A probe that fails transiently contributes no matches and no
// documents; cancelling ctx aborts the run with the context's error.
func FPS(ctx context.Context, db Searcher, cfg FPSConfig) (*Sample, hierarchy.NodeID, error) {
	cfg = cfg.withDefaults()
	if cfg.Classifier == nil {
		return nil, hierarchy.Root, errors.New("sampling: FPS requires a classifier")
	}
	tree := cfg.Classifier.Tree()
	acc := newAccumulator(cfg.CheckpointEvery, cfg.Span, cfg.Metrics)
	acc.sample.QueryDF = make(map[string]int)
	probeCount := cfg.Metrics.Counter("classify_probes_total")

	// probeCategory issues one category's probes, accumulating sample
	// documents, and returns the category's total match coverage.
	probeCategory := func(cat hierarchy.NodeID) (int, error) {
		coverage := 0
		for _, probe := range cfg.Classifier.Probes(cat) {
			if err := ctx.Err(); err != nil {
				return coverage, err
			}
			acc.sample.Queries++
			acc.queries.Inc()
			probeCount.Inc()
			matches, ids, err := db.Query(ctx, []string{probe}, cfg.RetrieveLimit)
			if err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return coverage, cerr
				}
				acc.span.Event("sampling.probe_error",
					telemetry.String("probe", probe), telemetry.String("error", err.Error()))
				continue // transient failure: this probe contributes nothing
			}
			if old, ok := acc.sample.QueryDF[probe]; !ok || matches > old {
				acc.sample.QueryDF[probe] = matches
			}
			coverage += matches
			acc.add(ctx, db, ids, cfg.DocsPerQuery)
		}
		return coverage, nil
	}

	// First pass: probe and recurse into every qualifying subtree,
	// recording each probed node's qualification and coverage.
	type probeResult struct {
		coverage  int
		qualifies bool
	}
	results := make(map[hierarchy.NodeID]probeResult)
	var visit func(node hierarchy.NodeID) error
	visit = func(node hierarchy.NodeID) error {
		children := tree.Children(node)
		if len(children) == 0 {
			return nil
		}
		total := 0
		for _, ch := range children {
			c, err := probeCategory(ch)
			if err != nil {
				return err
			}
			results[ch] = probeResult{coverage: c}
			total += c
		}
		for _, ch := range children {
			r := results[ch]
			spec := 0.0
			if total > 0 {
				spec = float64(r.coverage) / float64(total)
			}
			r.qualifies = r.coverage >= cfg.TauCoverage && spec >= cfg.TauSpecificity
			results[ch] = r
			if r.qualifies {
				if err := visit(ch); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := visit(hierarchy.Root); err != nil {
		return nil, hierarchy.Root, err
	}

	// Second pass: the classification is the chain of best qualifying
	// children from the root down.
	classification := hierarchy.Root
	for {
		var best hierarchy.NodeID
		bestCov := -1
		for _, ch := range tree.Children(classification) {
			r, probed := results[ch]
			if probed && r.qualifies && r.coverage > bestCov {
				bestCov = r.coverage
				best = ch
			}
		}
		if bestCov < 0 {
			break
		}
		classification = best
	}
	return acc.finish(ctx, db, cfg.ResampleProbes), classification, nil
}
