package sampling

import (
	"context"
	"errors"
	"math/rand"

	"repro/internal/telemetry"
)

// QBSConfig parameterizes query-based sampling. Defaults follow the
// paper's setup (Section 5.2).
type QBSConfig struct {
	// TargetDocs is the sample size to collect (default 300).
	TargetDocs int
	// DocsPerQuery is the maximum number of previously unseen documents
	// retrieved per query (default 4).
	DocsPerQuery int
	// MaxBarren stops sampling after this many consecutive queries that
	// retrieve no new documents (default 500).
	MaxBarren int
	// SeedLexicon supplies the random single-word bootstrap queries
	// sent until the first document is retrieved (required).
	SeedLexicon []string
	// RetrieveLimit is how many ranked results each query requests from
	// the database; unseen documents are taken from this window
	// (default 40). Real engines page through results the same way.
	RetrieveLimit int
	// CheckpointEvery controls how often (in sampled documents) a
	// Mandelbrot fit is recorded for frequency estimation (default 50).
	CheckpointEvery int
	// ResampleProbes is the number of sample–resample queries issued
	// after sampling for size estimation (default 5, per Si & Callan).
	ResampleProbes int
	// Seed drives query-word selection.
	Seed int64
	// Span receives trace events (query rounds, vocabulary growth);
	// Metrics receives the sampling counters. Both may be nil.
	Span    *telemetry.Span
	Metrics *telemetry.Registry
}

func (c QBSConfig) withDefaults() QBSConfig {
	if c.TargetDocs == 0 {
		c.TargetDocs = 300
	}
	if c.DocsPerQuery == 0 {
		c.DocsPerQuery = 4
	}
	if c.MaxBarren == 0 {
		c.MaxBarren = 500
	}
	if c.RetrieveLimit == 0 {
		c.RetrieveLimit = 40
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 50
	}
	if c.ResampleProbes == 0 {
		c.ResampleProbes = 5
	}
	return c
}

// QBS runs query-based sampling (Callan & Connell) against db: random
// seed-lexicon queries until one retrieves a document, then single-word
// queries drawn from the words of the sampled documents, each
// retrieving at most DocsPerQuery unseen documents, until TargetDocs
// documents are sampled or MaxBarren consecutive queries add nothing.
//
// A query that fails transiently (the remote node dropped it even after
// the client's own retries) retrieves nothing and counts as barren;
// cancelling ctx aborts the run with the context's error.
func QBS(ctx context.Context, db Searcher, cfg QBSConfig) (*Sample, error) {
	cfg = cfg.withDefaults()
	if len(cfg.SeedLexicon) == 0 {
		return nil, errors.New("sampling: QBS requires a seed lexicon")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	acc := newAccumulator(cfg.CheckpointEvery, cfg.Span, cfg.Metrics)
	acc.sample.QueryDF = make(map[string]int)
	used := make(map[string]bool)

	query := func(w string) (int, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		acc.sample.Queries++
		acc.queries.Inc()
		used[w] = true
		matches, ids, err := db.Query(ctx, []string{w}, cfg.RetrieveLimit)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return 0, cerr
			}
			acc.span.Event("sampling.query_error",
				telemetry.String("word", w), telemetry.String("error", err.Error()))
			return 0, nil // transient failure: this query retrieved nothing
		}
		acc.sample.QueryDF[w] = matches
		max := cfg.DocsPerQuery
		if remaining := cfg.TargetDocs - len(acc.sample.Docs); remaining < max {
			max = remaining
		}
		return acc.add(ctx, db, ids, max), nil
	}

	// Bootstrap: random dictionary words until something comes back.
	bootstrapped := false
	for attempt := 0; attempt < cfg.MaxBarren; attempt++ {
		w := cfg.SeedLexicon[rng.Intn(len(cfg.SeedLexicon))]
		if used[w] {
			continue
		}
		n, err := query(w)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			bootstrapped = true
			break
		}
	}
	if !bootstrapped {
		return acc.finish(ctx, nil, 0), nil // empty or unreachable database
	}

	barren := 0
	for len(acc.sample.Docs) < cfg.TargetDocs && barren < cfg.MaxBarren {
		w, ok := drawUnusedWord(acc.vocabulary(), used, rng)
		if !ok {
			break // every sample word has been tried
		}
		n, err := query(w)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			barren++
		} else {
			barren = 0
		}
	}
	return acc.finish(ctx, db, cfg.ResampleProbes), nil
}
