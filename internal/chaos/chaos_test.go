package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestProxy(t *testing.T, initial Faults) (*Proxy, *httptest.Server, *httptest.Server) {
	t.Helper()
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		io.WriteString(w, "backend:"+r.URL.Path)
	}))
	t.Cleanup(backend.Close)
	p, err := New(backend.URL, Options{Initial: initial, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	t.Cleanup(front.Close)
	return p, front, backend
}

func TestProxyTransparentByDefault(t *testing.T) {
	p, front, _ := newTestProxy(t, Faults{})
	resp, err := http.Get(front.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "backend:/v1/info" {
		t.Fatalf("got %d %q, want transparent pass-through", resp.StatusCode, body)
	}
	if s := p.Stats(); s.Proxied != 1 || s.Errors != 0 || s.Resets != 0 {
		t.Fatalf("stats = %+v, want exactly one clean proxy", s)
	}
}

func TestProxyInjectsErrors(t *testing.T) {
	_, front, _ := newTestProxy(t, Faults{ErrorRate: 1, ErrorCode: 503})
	resp, err := http.Get(front.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("status = %d, want injected 503", resp.StatusCode)
	}
}

func TestProxyInjectsLatency(t *testing.T) {
	_, front, _ := newTestProxy(t, Faults{LatencyMs: 60})
	start := time.Now()
	resp, err := http.Get(front.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("request took %v, want ≥ injected 60ms latency", elapsed)
	}
}

func TestProxyResetsConnections(t *testing.T) {
	_, front, _ := newTestProxy(t, Faults{ResetRate: 1})
	resp, err := http.Get(front.URL + "/")
	if err == nil {
		resp.Body.Close()
		t.Fatalf("got response %d, want connection error from reset", resp.StatusCode)
	}
}

func TestProxyBlackholeHoldsUntilCallerGivesUp(t *testing.T) {
	_, front, _ := newTestProxy(t, Faults{Blackhole: true})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, front.URL+"/", nil)
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
		t.Fatal("blackholed request got a response")
	}
	if !errors.Is(err, context.DeadlineExceeded) && !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("gave up after %v, want to hang until the caller's deadline", elapsed)
	}
}

func TestAdminEndpointRoundTrip(t *testing.T) {
	p, front, _ := newTestProxy(t, Faults{})

	// POST replaces the fault set.
	body, _ := json.Marshal(Faults{LatencyMs: 5, ErrorRate: 0.25})
	resp, err := http.Post(front.URL+"/chaos", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Faults Faults `json:"faults"`
		Stats  Stats  `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.Faults.LatencyMs != 5 || got.Faults.ErrorRate != 0.25 {
		t.Fatalf("admin POST echoed %+v", got.Faults)
	}
	if f := p.Faults(); f.LatencyMs != 5 || f.ErrorRate != 0.25 {
		t.Fatalf("active faults = %+v, want the POSTed set", f)
	}

	// GET inspects without changing anything.
	resp, err = http.Get(front.URL + "/chaos")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.Faults.LatencyMs != 5 {
		t.Fatalf("admin GET returned %+v", got.Faults)
	}

	// Out-of-range rates are rejected.
	resp, err = http.Post(front.URL+"/chaos", "application/json", strings.NewReader(`{"error_rate": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad rate accepted with %d", resp.StatusCode)
	}

	// Clearing faults restores transparency.
	resp, err = http.Post(front.URL+"/chaos", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(front.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("post-clear request got %d", resp.StatusCode)
	}
}

func TestProxySlowBody(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(bytes.Repeat([]byte("x"), 2048))
	}))
	t.Cleanup(backend.Close)
	p, err := New(backend.URL, Options{Initial: Faults{SlowBodyBytesPerSec: 8192}})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	t.Cleanup(front.Close)

	start := time.Now()
	resp, err := http.Get(front.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(body) != 2048 {
		t.Fatalf("body length = %d, want 2048 (throttling must not corrupt)", len(body))
	}
	// 2048 bytes at 8192 B/s in 512-byte chunks ≈ 3 inter-chunk sleeps
	// of 62.5ms each.
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("throttled body arrived in %v, want ≥ ~187ms", elapsed)
	}
}

// The slow-body throttle must also pace streamed (flushed) responses —
// SSE frames are many small writes, so the byte schedule has to span
// Write calls — while still delivering each frame as it is written
// instead of buffering the stream to the end.
func TestProxySlowBodyStreamed(t *testing.T) {
	const frames = 4
	// Each frame is exactly 512 bytes: "data: " + 504 payload + "\n\n".
	frame := "data: " + strings.Repeat("x", 504) + "\n\n"
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fl := w.(http.Flusher)
		for i := 0; i < frames; i++ {
			io.WriteString(w, frame)
			fl.Flush()
		}
	}))
	t.Cleanup(backend.Close)
	p, err := New(backend.URL, Options{Initial: Faults{SlowBodyBytesPerSec: 4096}})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	t.Cleanup(front.Close)

	start := time.Now()
	resp, err := http.Get(front.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// The first frame is inside the schedule's opening budget, so it
	// must arrive well before the throttled tail — flushes pass through
	// the wrapper instead of the proxy buffering the whole stream.
	buf := make([]byte, 512)
	if _, err := io.ReadFull(resp.Body, buf); err != nil {
		t.Fatal(err)
	}
	firstFrame := time.Since(start)
	rest, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)

	if got := string(buf) + string(rest); got != strings.Repeat(frame, frames) {
		t.Fatalf("streamed body corrupted: %d bytes, want %d", len(got), frames*len(frame))
	}
	// 4×512-byte frames at 4096 B/s: frames due at 0, 125, 250, 375ms.
	if elapsed < 300*time.Millisecond {
		t.Fatalf("streamed throttled body arrived in %v, want ≥ ~375ms (throttle must span flushed writes)", elapsed)
	}
	if firstFrame > 150*time.Millisecond {
		t.Fatalf("first frame arrived after %v — stream buffered instead of flushed through the throttle", firstFrame)
	}
}
