// Package chaos is the cluster's fault-injection harness: an HTTP
// reverse proxy that sits in front of any member (dbnode replica, shard
// gateway, router) and injects configurable faults — added latency,
// error responses, connection resets, blackholes, slow response bodies
// — between the caller and the real backend.
//
// It exists so that cluster-level failure testing exercises the real
// network paths (wire client retries, breakers, hedges, failover,
// budgets) instead of per-test fakes: the e2e reconfiguration test and
// scripts/ boot the same proxy an operator would, and reconfigure it at
// runtime through the /chaos admin endpoint. Faults are sampled with a
// seeded PRNG so a test run is reproducible.
package chaos

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Faults is the active fault configuration. The zero value injects
// nothing (the proxy is transparent). All fields are runtime-settable
// through POST /chaos; durations are integer milliseconds and rates are
// [0,1] fractions so the struct round-trips trivially through curl.
type Faults struct {
	// LatencyMs is added to every proxied request, plus a uniform random
	// 0..JitterMs on top.
	LatencyMs int `json:"latency_ms,omitempty"`
	JitterMs  int `json:"jitter_ms,omitempty"`
	// ErrorRate is the fraction of requests answered with ErrorCode
	// (default 502) without touching the backend.
	ErrorRate float64 `json:"error_rate,omitempty"`
	ErrorCode int     `json:"error_code,omitempty"`
	// ResetRate is the fraction of requests whose connection is closed
	// abruptly (TCP reset as seen by the client) without a response.
	ResetRate float64 `json:"reset_rate,omitempty"`
	// Blackhole swallows every request: the proxy holds the connection
	// open, never answers, and aborts when the client gives up — a
	// network partition as seen from the caller.
	Blackhole bool `json:"blackhole,omitempty"`
	// SlowBodyBytesPerSec throttles response bodies to roughly this
	// rate, modelling a saturated or degraded link.
	SlowBodyBytesPerSec int `json:"slow_body_bytes_per_sec,omitempty"`
}

// Stats counts what the proxy has done since boot.
type Stats struct {
	Proxied     int64 `json:"proxied"`
	Delayed     int64 `json:"delayed"`
	Errors      int64 `json:"errors_injected"`
	Resets      int64 `json:"resets_injected"`
	Blackholed  int64 `json:"blackholed"`
	Throttled   int64 `json:"throttled_bodies"`
	AdminWrites int64 `json:"admin_writes"`
}

// Options tunes a Proxy.
type Options struct {
	// Initial is the fault set active at boot (zero: transparent).
	Initial Faults
	// Seed seeds the fault-sampling PRNG (0: a fixed default, so runs
	// are reproducible unless a seed is chosen).
	Seed int64
	// Logger, when non-nil, logs admin reconfigurations.
	Logger *slog.Logger
}

// Proxy is the fault-injecting reverse proxy. It serves two surfaces on
// one listener: /chaos (admin: GET returns faults+stats, POST replaces
// the fault set) and everything else (proxied to the target with the
// active faults applied).
type Proxy struct {
	target *url.URL
	rp     *httputil.ReverseProxy
	logger *slog.Logger

	mu     sync.Mutex
	faults Faults
	rng    *rand.Rand

	proxied     atomic.Int64
	delayed     atomic.Int64
	errors      atomic.Int64
	resets      atomic.Int64
	blackholed  atomic.Int64
	throttled   atomic.Int64
	adminWrites atomic.Int64
}

// New builds a proxy fronting target (a base URL like
// "http://127.0.0.1:9201").
func New(target string, opts Options) (*Proxy, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, fmt.Errorf("chaos: target %q: %w", target, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("chaos: target %q: need scheme://host", target)
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	p := &Proxy{
		target: u,
		logger: opts.Logger,
		faults: opts.Initial,
		rng:    rand.New(rand.NewSource(seed)),
	}
	p.rp = httputil.NewSingleHostReverseProxy(u)
	// A dead backend must look like an ordinary upstream error, not a
	// stack trace in the proxy's log.
	p.rp.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		w.WriteHeader(http.StatusBadGateway)
		fmt.Fprintf(w, "chaos: upstream %s: %v\n", u.Host, err)
	}
	return p, nil
}

// Faults returns the active fault set.
func (p *Proxy) Faults() Faults {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.faults
}

// SetFaults replaces the active fault set (also reachable via POST
// /chaos).
func (p *Proxy) SetFaults(f Faults) {
	p.mu.Lock()
	p.faults = f
	p.mu.Unlock()
	p.adminWrites.Add(1)
	if p.logger != nil {
		p.logger.Info("chaos faults set", "target", p.target.String(),
			"latency_ms", f.LatencyMs, "error_rate", f.ErrorRate,
			"reset_rate", f.ResetRate, "blackhole", f.Blackhole,
			"slow_body_Bps", f.SlowBodyBytesPerSec)
	}
}

// Stats returns the proxy's lifetime counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Proxied:     p.proxied.Load(),
		Delayed:     p.delayed.Load(),
		Errors:      p.errors.Load(),
		Resets:      p.resets.Load(),
		Blackholed:  p.blackholed.Load(),
		Throttled:   p.throttled.Load(),
		AdminWrites: p.adminWrites.Load(),
	}
}

// roll samples the seeded PRNG against a [0,1] rate.
func (p *Proxy) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Float64() < rate
}

// jitter samples 0..ms milliseconds.
func (p *Proxy) jitter(ms int) time.Duration {
	if ms <= 0 {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return time.Duration(p.rng.Intn(ms+1)) * time.Millisecond
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/chaos" || strings.HasPrefix(r.URL.Path, "/chaos/") {
		p.serveAdmin(w, r)
		return
	}
	f := p.Faults()

	if f.Blackhole {
		// Hold the request open until the caller gives up, then abort
		// the connection without a response — a partition, not an error.
		p.blackholed.Add(1)
		<-r.Context().Done()
		panic(http.ErrAbortHandler)
	}
	if d := time.Duration(f.LatencyMs)*time.Millisecond + p.jitter(f.JitterMs); d > 0 {
		p.delayed.Add(1)
		select {
		case <-time.After(d):
		case <-r.Context().Done():
			panic(http.ErrAbortHandler)
		}
	}
	if p.roll(f.ResetRate) {
		p.resets.Add(1)
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		// No hijack support (HTTP/2 etc.): abort instead.
		panic(http.ErrAbortHandler)
	}
	if p.roll(f.ErrorRate) {
		p.errors.Add(1)
		code := f.ErrorCode
		if code == 0 {
			code = http.StatusBadGateway
		}
		http.Error(w, "chaos: injected error", code)
		return
	}
	if f.SlowBodyBytesPerSec > 0 {
		p.throttled.Add(1)
		w = &throttledWriter{ResponseWriter: w, bytesPerSec: f.SlowBodyBytesPerSec, ctx: r.Context()}
	}
	p.proxied.Add(1)
	p.rp.ServeHTTP(w, r)
}

// serveAdmin handles GET /chaos (inspect) and POST /chaos (replace
// fault set).
func (p *Proxy) serveAdmin(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
	case http.MethodPost, http.MethodPut:
		var f Faults
		if err := json.NewDecoder(r.Body).Decode(&f); err != nil {
			http.Error(w, fmt.Sprintf("chaos: bad faults body: %v", err), http.StatusBadRequest)
			return
		}
		if f.ErrorRate < 0 || f.ErrorRate > 1 || f.ResetRate < 0 || f.ResetRate > 1 {
			http.Error(w, "chaos: rates must be in [0,1]", http.StatusBadRequest)
			return
		}
		p.SetFaults(f)
	default:
		http.Error(w, "chaos: GET or POST", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Target string `json:"target"`
		Faults Faults `json:"faults"`
		Stats  Stats  `json:"stats"`
	}{p.target.String(), p.Faults(), p.Stats()})
}

// throttledWriter paces body writes to roughly bytesPerSec by writing
// in small chunks against a schedule anchored at the first write. The
// budget spans Write calls: a streamed (flushed) response whose frames
// arrive as many small writes is paced exactly like one buffered body —
// each frame ships when the byte schedule reaches it, which is what
// lets the chaos proxy exercise SSE backpressure.
type throttledWriter struct {
	http.ResponseWriter
	bytesPerSec int
	ctx         interface{ Done() <-chan struct{} }
	start       time.Time
	total       int // bytes written across all calls
}

func (t *throttledWriter) Write(b []byte) (int, error) {
	const chunk = 512
	if t.start.IsZero() {
		t.start = time.Now()
	}
	written := 0
	for len(b) > 0 {
		// Sleep until the schedule catches up with what was already
		// written; the first chunk goes out immediately.
		due := time.Duration(float64(t.total) / float64(t.bytesPerSec) * float64(time.Second))
		if ahead := due - time.Since(t.start); ahead > 0 {
			select {
			case <-time.After(ahead):
			case <-t.ctx.Done():
				return written, fmt.Errorf("chaos: throttled write abandoned")
			}
		}
		n := chunk
		if n > len(b) {
			n = len(b)
		}
		w, err := t.ResponseWriter.Write(b[:n])
		written += w
		t.total += w
		if err != nil {
			return written, err
		}
		if f, ok := t.ResponseWriter.(http.Flusher); ok {
			f.Flush()
		}
		b = b[n:]
	}
	return written, nil
}

// Flush forwards to the inner writer, so the reverse proxy sees an
// http.Flusher on the wrapper and keeps passing streamed responses
// through frame by frame instead of falling back to buffering.
func (t *throttledWriter) Flush() {
	if f, ok := t.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.NewResponseController reach the inner writer's
// controls through the wrapper.
func (t *throttledWriter) Unwrap() http.ResponseWriter { return t.ResponseWriter }
