package hierarchy

// Default returns the 72-node, 4-level topic hierarchy used throughout
// the evaluation. Its shape matches the Open Directory subset from
// QProber that the paper uses (Section 5.1): 1 root, 8 top-level
// categories, 24 second-level categories, 39 third-level categories,
// for 54 leaves in total. Category names follow ODP conventions and
// include the categories the paper mentions by name (Health→ Diseases→
// AIDS, Science→ Social Sciences→ Economics, Sports→ Soccer, ...).
func Default() *Tree {
	return MustNew(Spec{
		Name: "Root",
		Children: []Spec{
			{Name: "Arts", Children: []Spec{
				{Name: "Literature", Children: []Spec{
					{Name: "Texts"}, {Name: "Poetry"}, {Name: "Drama"},
					{Name: "Classics"}, {Name: "Mythology"},
				}},
				{Name: "Movies"},
				{Name: "Music"},
			}},
			{Name: "Business", Children: []Spec{
				{Name: "Finance", Children: []Spec{
					{Name: "Investing"}, {Name: "Banking"},
					{Name: "Insurance"}, {Name: "Accounting"},
				}},
				{Name: "Marketing"},
				{Name: "Jobs"},
			}},
			{Name: "Computers", Children: []Spec{
				{Name: "Programming", Children: []Spec{
					{Name: "Java"}, {Name: "Compilers"},
					{Name: "Databases"}, {Name: "Web"},
				}},
				{Name: "Software"},
				{Name: "Hardware"},
			}},
			{Name: "Health", Children: []Spec{
				{Name: "Diseases", Children: []Spec{
					{Name: "AIDS"}, {Name: "Cancer"}, {Name: "Diabetes"},
					{Name: "Heart"}, {Name: "Allergies"},
				}},
				{Name: "Fitness"},
				{Name: "Medicine", Children: []Spec{
					{Name: "Pharmacy"}, {Name: "Nursing"}, {Name: "Dentistry"},
				}},
			}},
			{Name: "Recreation", Children: []Spec{
				{Name: "Travel"},
				{Name: "Outdoors", Children: []Spec{
					{Name: "Camping"}, {Name: "Fishing"}, {Name: "Hiking"},
					{Name: "Hunting"}, {Name: "Climbing"},
				}},
				{Name: "Pets"},
			}},
			{Name: "Science", Children: []Spec{
				{Name: "Mathematics"},
				{Name: "Social Sciences", Children: []Spec{
					{Name: "Economics"}, {Name: "History"}, {Name: "Psychology"},
					{Name: "Linguistics"}, {Name: "Anthropology"},
				}},
				{Name: "Biology", Children: []Spec{
					{Name: "Genetics"}, {Name: "Ecology"}, {Name: "Zoology"},
					{Name: "Botany"}, {Name: "Microbiology"},
				}},
			}},
			{Name: "Society", Children: []Spec{
				{Name: "Religion"},
				{Name: "Politics", Children: []Spec{
					{Name: "Elections"}, {Name: "Government"}, {Name: "Activism"},
				}},
				{Name: "Law"},
			}},
			{Name: "Sports", Children: []Spec{
				{Name: "Soccer"},
				{Name: "Basketball"},
				{Name: "Tennis"},
			}},
		},
	})
}
