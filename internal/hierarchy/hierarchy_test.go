package hierarchy

import (
	"reflect"
	"testing"
)

func TestDefaultShapeMatchesPaper(t *testing.T) {
	tr := Default()
	if got := tr.Len(); got != 72 {
		t.Errorf("node count = %d, want 72", got)
	}
	if got := len(tr.Leaves()); got != 54 {
		t.Errorf("leaf count = %d, want 54", got)
	}
	if got := tr.MaxDepth(); got != 3 {
		t.Errorf("max depth = %d, want 3 (4 levels including root)", got)
	}
	if got := len(tr.Children(Root)); got != 8 {
		t.Errorf("top-level categories = %d, want 8", got)
	}
	// Depth histogram: 1 root + 8 + 24 + 39.
	counts := map[int]int{}
	for _, id := range tr.All() {
		counts[tr.Depth(id)]++
	}
	want := map[int]int{0: 1, 1: 8, 2: 24, 3: 39}
	if !reflect.DeepEqual(counts, want) {
		t.Errorf("depth histogram = %v, want %v", counts, want)
	}
}

func TestPaperExampleCategoriesExist(t *testing.T) {
	tr := Default()
	for _, name := range []string{"Health", "Diseases", "AIDS", "Heart", "Economics", "Soccer", "Texts", "Java", "Mathematics"} {
		if _, ok := tr.Lookup(name); !ok {
			t.Errorf("category %q missing", name)
		}
	}
}

func TestPathAndPathString(t *testing.T) {
	tr := Default()
	aids, _ := tr.Lookup("AIDS")
	path := tr.Path(aids)
	if len(path) != 4 {
		t.Fatalf("path length = %d, want 4", len(path))
	}
	names := make([]string, len(path))
	for i, id := range path {
		names[i] = tr.Node(id).Name
	}
	want := []string{"Root", "Health", "Diseases", "AIDS"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("path = %v, want %v", names, want)
	}
	if s := tr.PathString(aids); s != "Root→ Health→ Diseases→ AIDS" {
		t.Errorf("PathString = %q", s)
	}
	if s := tr.PathString(Root); s != "Root" {
		t.Errorf("PathString(Root) = %q", s)
	}
}

func TestParentChildConsistency(t *testing.T) {
	tr := Default()
	for _, id := range tr.All() {
		for _, c := range tr.Children(id) {
			if tr.Parent(c) != id {
				t.Errorf("parent of %v is %v, want %v", c, tr.Parent(c), id)
			}
			if tr.Depth(c) != tr.Depth(id)+1 {
				t.Errorf("depth of child %v inconsistent", c)
			}
		}
	}
	if tr.Parent(Root) != Root {
		t.Error("root's parent should be root")
	}
}

func TestIsAncestorOrSelf(t *testing.T) {
	tr := Default()
	health, _ := tr.Lookup("Health")
	diseases, _ := tr.Lookup("Diseases")
	aids, _ := tr.Lookup("AIDS")
	sports, _ := tr.Lookup("Sports")
	if !tr.IsAncestorOrSelf(Root, aids) || !tr.IsAncestorOrSelf(health, aids) ||
		!tr.IsAncestorOrSelf(diseases, aids) || !tr.IsAncestorOrSelf(aids, aids) {
		t.Error("ancestor chain broken")
	}
	if tr.IsAncestorOrSelf(sports, aids) || tr.IsAncestorOrSelf(aids, health) {
		t.Error("false ancestor relation")
	}
}

func TestSubtree(t *testing.T) {
	tr := Default()
	diseases, _ := tr.Lookup("Diseases")
	sub := tr.Subtree(diseases)
	if len(sub) != 6 { // Diseases + 5 leaves
		t.Errorf("subtree size = %d, want 6", len(sub))
	}
	if sub[0] != diseases {
		t.Error("subtree should start at the node itself")
	}
	all := tr.Subtree(Root)
	if len(all) != tr.Len() {
		t.Errorf("root subtree = %d nodes, want %d", len(all), tr.Len())
	}
}

func TestLeavesAreLeaves(t *testing.T) {
	tr := Default()
	for _, l := range tr.Leaves() {
		if !tr.IsLeaf(l) {
			t.Errorf("Leaves() returned non-leaf %v", l)
		}
	}
}

func TestNewRejectsDuplicatesAndEmptyNames(t *testing.T) {
	if _, err := New(Spec{Name: "A", Children: []Spec{{Name: "A"}}}); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := New(Spec{Name: "A", Children: []Spec{{Name: ""}}}); err == nil {
		t.Error("empty name accepted")
	}
}

func TestLookupMissing(t *testing.T) {
	tr := Default()
	if _, ok := tr.Lookup("Nonexistent"); ok {
		t.Error("Lookup found a missing category")
	}
}

func TestSingleNodeTree(t *testing.T) {
	tr := MustNew(Spec{Name: "Root"})
	if tr.Len() != 1 || !tr.IsLeaf(Root) || tr.MaxDepth() != 0 {
		t.Error("single-node tree malformed")
	}
	if got := tr.Path(Root); len(got) != 1 || got[0] != Root {
		t.Errorf("Path(Root) = %v", got)
	}
}
