package hierarchy

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Parse reads an indentation-structured category hierarchy, one
// category per line, depth given by leading tabs (or runs of four
// spaces). Blank lines and lines starting with '#' are ignored. The
// first category is the root; every other line must be exactly one
// level deeper than an open ancestor or shallower (closing levels).
//
//	Root
//		Health
//			Diseases
//				AIDS
//		Sports
//
// This is the format the command-line tools accept for custom
// taxonomies.
func Parse(r io.Reader) (*Tree, error) {
	type node struct {
		spec     Spec
		children []*node
	}
	var root *node
	var stack []*node // stack[d] = open node at depth d
	scanner := bufio.NewScanner(r)
	line := 0
	for scanner.Scan() {
		line++
		raw := scanner.Text()
		trimmed := strings.TrimLeft(raw, "\t ")
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		depth, err := indentDepth(raw[:len(raw)-len(trimmed)])
		if err != nil {
			return nil, fmt.Errorf("hierarchy: line %d: %w", line, err)
		}
		name := strings.TrimSpace(trimmed)
		n := &node{spec: Spec{Name: name}}
		switch {
		case root == nil:
			if depth != 0 {
				return nil, fmt.Errorf("hierarchy: line %d: first category must be unindented", line)
			}
			root = n
			stack = []*node{root}
		case depth == 0:
			return nil, fmt.Errorf("hierarchy: line %d: second root %q", line, name)
		case depth > len(stack):
			return nil, fmt.Errorf("hierarchy: line %d: %q skips an indentation level", line, name)
		default:
			parent := stack[depth-1]
			parent.children = append(parent.children, n)
			stack = append(stack[:depth], n)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("hierarchy: %w", err)
	}
	if root == nil {
		return nil, fmt.Errorf("hierarchy: empty input")
	}
	var toSpec func(n *node) Spec
	toSpec = func(n *node) Spec {
		s := n.spec
		for _, c := range n.children {
			s.Children = append(s.Children, toSpec(c))
		}
		return s
	}
	return New(toSpec(root))
}

// indentDepth converts a leading whitespace prefix to a depth: one tab
// or four spaces per level.
func indentDepth(prefix string) (int, error) {
	if strings.Contains(prefix, "\t") && strings.Contains(prefix, " ") {
		return 0, fmt.Errorf("mixed tab/space indentation")
	}
	if strings.Contains(prefix, "\t") {
		return len(prefix), nil
	}
	if len(prefix)%4 != 0 {
		return 0, fmt.Errorf("space indentation must use 4-space steps")
	}
	return len(prefix) / 4, nil
}

// Format writes the tree in the Parse format (tabs).
func (t *Tree) Format(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, id := range t.All() {
		n := t.Node(id)
		if _, err := fmt.Fprintf(bw, "%s%s\n", strings.Repeat("\t", n.Depth), n.Name); err != nil {
			return err
		}
	}
	return bw.Flush()
}
