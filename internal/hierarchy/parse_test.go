package hierarchy

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseBasic(t *testing.T) {
	in := `
# a taxonomy
Root
	Health
		Diseases
			AIDS
		Fitness
	Sports
		Soccer
`
	tr, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 7 {
		t.Errorf("nodes = %d, want 7", tr.Len())
	}
	aids, ok := tr.Lookup("AIDS")
	if !ok {
		t.Fatal("AIDS missing")
	}
	if got := tr.PathString(aids); got != "Root→ Health→ Diseases→ AIDS" {
		t.Errorf("path = %q", got)
	}
	if d, _ := tr.Lookup("Soccer"); tr.Depth(d) != 2 {
		t.Error("Soccer depth wrong")
	}
}

func TestParseSpaceIndentation(t *testing.T) {
	in := "Root\n    A\n        B\n    C\n"
	tr, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 4 {
		t.Errorf("nodes = %d", tr.Len())
	}
	b, _ := tr.Lookup("B")
	if tr.Depth(b) != 2 {
		t.Error("B depth wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"comments only":  "# nothing\n\n",
		"indented root":  "\tRoot\n",
		"two roots":      "Root\nOther\n",
		"skipped level":  "Root\n\t\tDeep\n",
		"mixed indent":   "Root\n\t A\n",
		"ragged spaces":  "Root\n   A\n",
		"duplicate name": "Root\n\tA\n\tA\n",
	}
	for name, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	orig := Default()
	var buf bytes.Buffer
	if err := orig.Format(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("round trip lost nodes: %d vs %d", back.Len(), orig.Len())
	}
	for _, id := range orig.All() {
		want := orig.Node(id)
		got, ok := back.Lookup(want.Name)
		if !ok {
			t.Fatalf("category %q lost", want.Name)
		}
		if back.PathString(got) != orig.PathString(id) {
			t.Errorf("path of %q changed", want.Name)
		}
	}
}

func TestParseClosingLevels(t *testing.T) {
	in := "Root\n\tA\n\t\tB\n\tC\n\t\tD\n"
	tr, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	d, _ := tr.Lookup("D")
	c, _ := tr.Lookup("C")
	if tr.Parent(d) != c {
		t.Error("D should be under C after closing a level")
	}
}
