// Package hierarchy implements the hierarchical classification scheme
// that shrinkage operates over. The paper uses the 72-node, 4-level
// subset of the Open Directory Project hierarchy from QProber [14],
// with 54 leaf categories (Section 5.1). Default builds a tree with the
// same shape: a root, 8 top-level categories, 24 second-level
// categories, and 39 third-level categories, 54 of which are leaves.
package hierarchy

import (
	"fmt"
	"strings"
)

// NodeID identifies a category within one Tree. The root is always 0.
type NodeID int

// Root is the NodeID of the root category.
const Root NodeID = 0

// Node is one category in the tree.
type Node struct {
	ID       NodeID
	Name     string
	Parent   NodeID // Root's parent is Root itself
	Children []NodeID
	Depth    int // Root has depth 0
}

// Spec describes a category subtree for constructing a Tree.
type Spec struct {
	Name     string
	Children []Spec
}

// Tree is an immutable category hierarchy. All methods are safe for
// concurrent use.
type Tree struct {
	nodes  []Node
	byName map[string]NodeID
}

// New builds a Tree from a root Spec. Category names must be unique
// across the whole tree (ODP-style display names; uniqueness lets
// callers refer to categories by bare name).
func New(root Spec) (*Tree, error) {
	t := &Tree{byName: make(map[string]NodeID)}
	if err := t.add(root, Root, 0); err != nil {
		return nil, err
	}
	return t, nil
}

// MustNew is New for static specs known to be valid.
func MustNew(root Spec) *Tree {
	t, err := New(root)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Tree) add(s Spec, parent NodeID, depth int) error {
	if s.Name == "" {
		return fmt.Errorf("hierarchy: empty category name under %q", t.nameOf(parent))
	}
	if _, dup := t.byName[s.Name]; dup {
		return fmt.Errorf("hierarchy: duplicate category name %q", s.Name)
	}
	id := NodeID(len(t.nodes))
	t.nodes = append(t.nodes, Node{ID: id, Name: s.Name, Parent: parent, Depth: depth})
	t.byName[s.Name] = id
	if id != parent {
		p := &t.nodes[parent]
		p.Children = append(p.Children, id)
	}
	for _, c := range s.Children {
		if err := t.add(c, id, depth+1); err != nil {
			return err
		}
	}
	return nil
}

func (t *Tree) nameOf(id NodeID) string {
	if int(id) < len(t.nodes) {
		return t.nodes[id].Name
	}
	return "?"
}

// Len returns the number of categories, including the root.
func (t *Tree) Len() int { return len(t.nodes) }

// Node returns the node with the given id. It panics on out-of-range ids.
func (t *Tree) Node(id NodeID) Node { return t.nodes[id] }

// Lookup finds a category by its unique name.
func (t *Tree) Lookup(name string) (NodeID, bool) {
	id, ok := t.byName[name]
	return id, ok
}

// Parent returns the parent of id (Root for the root itself).
func (t *Tree) Parent(id NodeID) NodeID { return t.nodes[id].Parent }

// Children returns the child ids of a category. The returned slice must
// not be modified.
func (t *Tree) Children(id NodeID) []NodeID { return t.nodes[id].Children }

// IsLeaf reports whether the category has no children.
func (t *Tree) IsLeaf(id NodeID) bool { return len(t.nodes[id].Children) == 0 }

// Depth returns the depth of the category (root = 0).
func (t *Tree) Depth(id NodeID) int { return t.nodes[id].Depth }

// Path returns the categories from the root down to id, inclusive.
// This is the C1, ..., Cm sequence of Definition 4 when id is the
// category a database is classified under.
func (t *Tree) Path(id NodeID) []NodeID {
	depth := t.nodes[id].Depth
	path := make([]NodeID, depth+1)
	for i := depth; i >= 0; i-- {
		path[i] = id
		id = t.nodes[id].Parent
	}
	return path
}

// PathString formats the path root→id in the paper's notation,
// e.g. "Root→ Health→ Diseases→ AIDS".
func (t *Tree) PathString(id NodeID) string {
	ids := t.Path(id)
	parts := make([]string, len(ids))
	for i, n := range ids {
		parts[i] = t.nodes[n].Name
	}
	return strings.Join(parts, "→ ")
}

// Leaves returns all leaf category ids in id order.
func (t *Tree) Leaves() []NodeID {
	var out []NodeID
	for _, n := range t.nodes {
		if len(n.Children) == 0 {
			out = append(out, n.ID)
		}
	}
	return out
}

// Subtree returns id and all its descendants in preorder.
func (t *Tree) Subtree(id NodeID) []NodeID {
	out := []NodeID{id}
	for _, c := range t.nodes[id].Children {
		out = append(out, t.Subtree(c)...)
	}
	return out
}

// IsAncestorOrSelf reports whether a is on the path from the root to b.
func (t *Tree) IsAncestorOrSelf(a, b NodeID) bool {
	for {
		if a == b {
			return true
		}
		if b == Root {
			return false
		}
		b = t.nodes[b].Parent
	}
}

// All returns every node id in preorder (root first).
func (t *Tree) All() []NodeID {
	out := make([]NodeID, len(t.nodes))
	for i := range t.nodes {
		out[i] = NodeID(i)
	}
	return out
}

// MaxDepth returns the largest depth in the tree.
func (t *Tree) MaxDepth() int {
	max := 0
	for _, n := range t.nodes {
		if n.Depth > max {
			max = n.Depth
		}
	}
	return max
}
