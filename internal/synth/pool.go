package synth

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/hierarchy"
	"repro/internal/index"
	"repro/internal/zipf"
)

// TRECConfig controls the TREC-style testbed builder, which reproduces
// the paper's construction of the TREC4 and TREC6 data sets: a large
// document pool "separated into disjoint databases via clustering using
// the K-means algorithm" (Section 5.1).
type TRECConfig struct {
	// Name labels the testbed ("TREC4" or "TREC6").
	Name string
	// PoolDocs is the number of documents generated into the pool
	// before clustering (default 60000).
	PoolDocs int
	// Databases is the number of clusters/databases (default 100, as in
	// the paper).
	Databases int
	// SitesPerLeaf is the number of distinct "sites" (private
	// vocabularies) contributing documents to each leaf topic
	// (default 3). Site vocabularies play the role of per-source noise
	// (author names, boilerplate) in real collections.
	SitesPerLeaf int
	// LeafSkew is the Zipf exponent of leaf-topic popularity in the
	// pool (default 0.8: some topics are much more common than others,
	// so cluster sizes vary, as the paper's did).
	LeafSkew float64
	// Seed drives pool generation and clustering initialization.
	Seed int64
	// ClusterFeatures and ClusterIters tune K-means (defaults 1500/8).
	ClusterFeatures int
	ClusterIters    int
}

func (c TRECConfig) withDefaults() TRECConfig {
	if c.Name == "" {
		c.Name = "TREC"
	}
	if c.PoolDocs == 0 {
		c.PoolDocs = 60000
	}
	if c.Databases == 0 {
		c.Databases = 100
	}
	if c.SitesPerLeaf == 0 {
		c.SitesPerLeaf = 3
	}
	if c.LeafSkew == 0 {
		c.LeafSkew = 0.8
	}
	if c.ClusterFeatures == 0 {
		c.ClusterFeatures = 1500
	}
	if c.ClusterIters == 0 {
		c.ClusterIters = 8
	}
	return c
}

// poolCorpus adapts a generated document pool to cluster.Corpus.
type poolCorpus struct {
	docs [][]string
}

func (p *poolCorpus) NumDocs() int { return len(p.docs) }

func (p *poolCorpus) DocTermCounts(d int, fn func(string, int)) {
	counts := make(map[string]int, len(p.docs[d]))
	for _, t := range p.docs[d] {
		counts[t]++
	}
	for t, c := range counts {
		fn(t, c)
	}
}

func (p *poolCorpus) ForEachTerm(fn func(string, int)) {
	df := make(map[string]int, 1<<16)
	seen := make(map[string]bool, 256)
	for _, doc := range p.docs {
		for k := range seen {
			delete(seen, k)
		}
		for _, t := range doc {
			if !seen[t] {
				seen[t] = true
				df[t]++
			}
		}
	}
	for t, d := range df {
		fn(t, d)
	}
}

// BuildTRECStyle generates a topic-labeled document pool and partitions
// it into topically coherent databases with K-means, as the paper does
// for TREC4 and TREC6. Each resulting Database's Category is the
// dominant source leaf of its documents (diagnostic ground truth; the
// experiments classify these databases by query probing, as the paper
// must for TREC data).
func BuildTRECStyle(g *Generator, cfg TRECConfig) (*Testbed, error) {
	cfg = cfg.withDefaults()
	if cfg.PoolDocs < cfg.Databases {
		return nil, errors.New("synth: pool smaller than database count")
	}
	tree := g.Tree()
	leaves := tree.Leaves()
	popularity, err := zipf.NewSampler(len(leaves), cfg.LeafSkew, 0)
	if err != nil {
		return nil, err
	}

	// Lazily created per-(leaf, site) document sources.
	type siteKey struct {
		leaf hierarchy.NodeID
		site int
	}
	sources := make(map[siteKey]*DocSource)
	sourceFor := func(k siteKey) (*DocSource, error) {
		if s, ok := sources[k]; ok {
			return s, nil
		}
		priv, err := g.NewPrivateVocab(fmt.Sprintf("s%d_%d_", int(k.leaf), k.site))
		if err != nil {
			return nil, err
		}
		jit := subRNG(cfg.Seed, 2, int64(k.leaf), int64(k.site))
		s := g.NewDocSource(k.leaf, priv, jit)
		sources[k] = s
		return s, nil
	}

	pool := &poolCorpus{docs: make([][]string, cfg.PoolDocs)}
	labels := make([]hierarchy.NodeID, cfg.PoolDocs)
	rng := subRNG(cfg.Seed, 3)
	for i := 0; i < cfg.PoolDocs; i++ {
		leaf := leaves[popularity.Sample(rng)]
		site := rng.Intn(cfg.SitesPerLeaf)
		src, err := sourceFor(siteKey{leaf, site})
		if err != nil {
			return nil, err
		}
		doc := src.GenDoc(rng, nil)
		owned := make([]string, len(doc))
		copy(owned, doc)
		pool.docs[i] = owned
		labels[i] = leaf
	}

	res, err := cluster.KMeans(pool, cluster.Config{
		K:        cfg.Databases,
		Features: cfg.ClusterFeatures,
		MaxIter:  cfg.ClusterIters,
		Seed:     subSeed(cfg.Seed, 4),
	})
	if err != nil {
		return nil, err
	}

	builders := make([]*index.Builder, cfg.Databases)
	domCount := make([]map[hierarchy.NodeID]int, cfg.Databases)
	for i := range builders {
		builders[i] = index.NewBuilder(res.Sizes[i])
		domCount[i] = make(map[hierarchy.NodeID]int)
	}
	for d, a := range res.Assign {
		builders[a].Add(pool.docs[d])
		domCount[a][labels[d]]++
	}

	bed := &Testbed{Name: cfg.Name, Tree: tree, Gen: g}
	for i := range builders {
		dominant := hierarchy.Root
		best := -1
		for leaf, n := range domCount[i] {
			if n > best || (n == best && leaf < dominant) {
				best, dominant = n, leaf
			}
		}
		ix := builders[i].Build()
		if ix.NumDocs() == 0 {
			// K-means reseeds empty clusters, but guard anyway: an
			// empty database is legal for selection (never selected).
			continue
		}
		bed.Databases = append(bed.Databases, &Database{
			Name:     fmt.Sprintf("all-%d", i+1),
			Category: dominant,
			Index:    ix,
		})
	}
	return bed, nil
}
