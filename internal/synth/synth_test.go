package synth

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hierarchy"
)

// smallTree is a compact hierarchy for fast tests.
func smallTree() *hierarchy.Tree {
	return hierarchy.MustNew(hierarchy.Spec{
		Name: "Root",
		Children: []hierarchy.Spec{
			{Name: "Health", Children: []hierarchy.Spec{
				{Name: "Heart"}, {Name: "Cancer"},
			}},
			{Name: "Sports", Children: []hierarchy.Spec{
				{Name: "Soccer"}, {Name: "Tennis"},
			}},
		},
	})
}

func smallGen(t testing.TB, seed int64) *Generator {
	t.Helper()
	g, err := NewGenerator(Config{
		Tree:              smallTree(),
		Seed:              seed,
		GlobalVocabSize:   800,
		CategoryVocabBase: 500,
		PrivateVocabSize:  80,
		DocLenMean:        60,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGeneratorRequiresTree(t *testing.T) {
	if _, err := NewGenerator(Config{}); err == nil {
		t.Fatal("nil tree accepted")
	}
}

func TestGeneratorVocabularies(t *testing.T) {
	g := smallGen(t, 1)
	if g.CategoryVocab(hierarchy.Root) != nil {
		t.Error("root should have no category vocabulary")
	}
	tree := g.Tree()
	health, _ := tree.Lookup("Health")
	heart, _ := tree.Lookup("Heart")
	hv, tv := g.CategoryVocab(health), g.CategoryVocab(heart)
	if hv == nil || tv == nil {
		t.Fatal("missing category vocab")
	}
	if hv.Len() <= tv.Len() {
		t.Errorf("deeper vocab should be smaller: depth1=%d depth2=%d", hv.Len(), tv.Len())
	}
	// Vocabularies must be disjoint (distinct prefixes).
	if hv.Word(0) == tv.Word(0) {
		t.Error("category vocabularies overlap")
	}
}

func TestDocSourceGeneratesMixedVocabulary(t *testing.T) {
	g := smallGen(t, 2)
	tree := g.Tree()
	heart, _ := tree.Lookup("Heart")
	priv, err := g.NewPrivateVocab("priv_")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	src := g.NewDocSource(heart, priv, rng)

	counts := map[string]int{"global": 0, "health": 0, "heart": 0, "private": 0}
	var buf []string
	for i := 0; i < 300; i++ {
		buf = src.GenDoc(rng, buf)
		for _, w := range buf {
			switch {
			case w[0] == 'g':
				counts["global"]++
			case len(w) > 5 && w[:5] == "heart":
				counts["heart"]++
			case len(w) > 6 && w[:6] == "health":
				counts["health"]++
			case len(w) > 4 && w[:4] == "priv":
				counts["private"]++
			default:
				t.Fatalf("word %q from unexpected vocabulary", w)
			}
		}
	}
	for comp, n := range counts {
		if n == 0 {
			t.Errorf("component %s contributed no words", comp)
		}
	}
	// The leaf's own vocabulary should dominate the topical mass.
	if counts["heart"] <= counts["health"] {
		t.Errorf("leaf vocab (%d) should outweigh parent vocab (%d)", counts["heart"], counts["health"])
	}
}

func TestDocLenDistribution(t *testing.T) {
	g := smallGen(t, 4)
	rng := rand.New(rand.NewSource(1))
	var sum int
	for i := 0; i < 5000; i++ {
		l := g.DocLen(rng)
		if l < 20 || l > 600 {
			t.Fatalf("DocLen out of bounds: %d", l)
		}
		sum += l
	}
	mean := float64(sum) / 5000
	if mean < 48 || mean > 75 {
		t.Errorf("mean doc length = %v, configured 60", mean)
	}
}

func TestBuildWebShape(t *testing.T) {
	g := smallGen(t, 5)
	bed, err := BuildWeb(g, WebConfig{PerLeaf: 2, Extra: 3, MinSize: 30, MaxSize: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	wantDBs := 4*2 + 3 // 4 leaves x 2 + 3 extra
	if len(bed.Databases) != wantDBs {
		t.Fatalf("databases = %d, want %d", len(bed.Databases), wantDBs)
	}
	for _, db := range bed.Databases {
		if db.Size() < 30 || db.Size() > 100 {
			t.Errorf("db %s size %d outside [30,100]", db.Name, db.Size())
		}
		if db.Category == hierarchy.Root {
			t.Errorf("db %s classified at root", db.Name)
		}
		if db.Name == "" {
			t.Error("unnamed database")
		}
	}
	// Names must be unique.
	seen := map[string]bool{}
	for _, db := range bed.Databases {
		if seen[db.Name] {
			t.Errorf("duplicate database name %s", db.Name)
		}
		seen[db.Name] = true
	}
}

func TestBuildWebDeterministic(t *testing.T) {
	g1 := smallGen(t, 6)
	g2 := smallGen(t, 6)
	b1, err := BuildWeb(g1, WebConfig{PerLeaf: 1, Extra: 1, MinSize: 30, MaxSize: 60, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := BuildWeb(g2, WebConfig{PerLeaf: 1, Extra: 1, MinSize: 30, MaxSize: 60, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range b1.Databases {
		d1, d2 := b1.Databases[i], b2.Databases[i]
		if d1.Name != d2.Name || d1.Size() != d2.Size() || d1.Category != d2.Category {
			t.Fatalf("nondeterministic build: %+v vs %+v", d1, d2)
		}
		if d1.Index.NumTerms() != d2.Index.NumTerms() {
			t.Fatalf("nondeterministic vocabulary for %s", d1.Name)
		}
	}
}

func TestSiblingDatabasesShareTopicalVocabulary(t *testing.T) {
	// The premise of shrinkage: databases under the same category have
	// overlapping vocabularies; unrelated databases overlap much less
	// (only through the global vocabulary).
	g := smallGen(t, 8)
	tree := g.Tree()
	heart, _ := tree.Lookup("Heart")
	soccer, _ := tree.Lookup("Soccer")
	mk := func(cat hierarchy.NodeID, stream int64) *Database {
		rng := subRNG(99, stream)
		db, err := buildDatabase(g, "db", cat, 150, rng)
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	a, b, c := mk(heart, 1), mk(heart, 2), mk(soccer, 3)
	overlap := func(x, y *Database) float64 {
		var both, xOnly int
		x.Index.ForEachTerm(func(term string, df int, tf int64) {
			if y.Index.DocFreq(term) > 0 {
				both++
			} else {
				xOnly++
			}
		})
		return float64(both) / float64(both+xOnly)
	}
	sib := overlap(a, b)
	far := overlap(a, c)
	if sib <= far {
		t.Errorf("sibling overlap %v should exceed cross-topic overlap %v", sib, far)
	}
}

func TestBuildTRECStyleShape(t *testing.T) {
	g := smallGen(t, 10)
	bed, err := BuildTRECStyle(g, TRECConfig{
		Name: "TREC-mini", PoolDocs: 600, Databases: 6, Seed: 11,
		ClusterFeatures: 300, ClusterIters: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bed.Name != "TREC-mini" {
		t.Errorf("name = %s", bed.Name)
	}
	if len(bed.Databases) == 0 || len(bed.Databases) > 6 {
		t.Fatalf("databases = %d", len(bed.Databases))
	}
	if got := bed.TotalDocs(); got != 600 {
		t.Errorf("total docs = %d, want 600", got)
	}
	for _, db := range bed.Databases {
		if db.Size() == 0 {
			t.Errorf("empty database %s survived", db.Name)
		}
	}
}

func TestBuildTRECClustersAreTopical(t *testing.T) {
	// Clusters should be topically purer than random assignment: most
	// databases should have a clear dominant topic among their docs.
	// We check this indirectly: sibling leaf vocabularies should be
	// concentrated, i.e., for most databases one leaf's vocabulary
	// dominates topical terms.
	g := smallGen(t, 12)
	bed, err := BuildTRECStyle(g, TRECConfig{
		Name: "T", PoolDocs: 800, Databases: 4, Seed: 13,
		ClusterFeatures: 400, ClusterIters: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	cats := map[hierarchy.NodeID]bool{}
	for _, db := range bed.Databases {
		cats[db.Category] = true
	}
	if len(cats) < 2 {
		t.Errorf("all clusters share one dominant category; clustering looks degenerate")
	}
}

func TestGenQueriesShape(t *testing.T) {
	g := smallGen(t, 14)
	bed, err := BuildWeb(g, WebConfig{PerLeaf: 2, Extra: 0, MinSize: 80, MaxSize: 200, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	spec := QuerySpec{Count: 12, MinLen: 3, MaxLen: 7, KeyRankLo: 5, KeyRankHi: 120, MinRelevant: 3, Seed: 16}
	if err := GenQueries(bed, spec); err != nil {
		t.Fatal(err)
	}
	if len(bed.Queries) != 12 {
		t.Fatalf("queries = %d", len(bed.Queries))
	}
	for _, q := range bed.Queries {
		if len(q.Terms) < 3 || len(q.Terms) > 7 {
			t.Errorf("query %d length %d outside [3,7]", q.ID, len(q.Terms))
		}
		if len(q.Key) < 2 || len(q.Key) > 4 {
			t.Errorf("query %d has %d key terms", q.ID, len(q.Key))
		}
		// Key terms are part of the query.
		inQuery := map[string]bool{}
		for _, w := range q.Terms {
			if inQuery[w] {
				t.Errorf("query %d has duplicate term %s", q.ID, w)
			}
			inQuery[w] = true
		}
		for _, k := range q.Key {
			if !inQuery[k] {
				t.Errorf("query %d key term %s not in query", q.ID, k)
			}
		}
		// Relevance judgments exist.
		var rel int
		for _, db := range bed.Databases {
			rel += q.RelevantIn(db)
		}
		if rel < 3 {
			t.Errorf("query %d has %d relevant docs, want >= 3", q.ID, rel)
		}
	}
}

func TestTRECQuerySpecs(t *testing.T) {
	q4 := TREC4QuerySpec(1)
	if q4.MinLen != 8 || q4.MaxLen != 34 {
		t.Errorf("TREC4 spec = %+v", q4)
	}
	q6 := TREC6QuerySpec(1)
	if q6.MinLen != 2 || q6.MaxLen != 5 {
		t.Errorf("TREC6 spec = %+v", q6)
	}
}

func TestSubSeedIndependence(t *testing.T) {
	seen := map[int64]bool{}
	for i := int64(0); i < 1000; i++ {
		s := subSeed(42, i)
		if seen[s] {
			t.Fatalf("subSeed collision at stream %d", i)
		}
		seen[s] = true
	}
	if subSeed(42, 1, 2) == subSeed(42, 2, 1) {
		t.Error("subSeed should be order-sensitive")
	}
}

func TestVocabularyBasics(t *testing.T) {
	v, err := NewVocabulary("w", 100, 1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 100 || v.Word(0) != "w0" || v.Word(99) != "w99" {
		t.Error("vocabulary words malformed")
	}
	if v.Prob(0) <= v.Prob(50) {
		t.Error("rank-0 word should be most probable")
	}
	if _, err := NewVocabulary("w", 0, 1, 0); err == nil {
		t.Error("empty vocabulary accepted")
	}
}

func BenchmarkGenDoc(b *testing.B) {
	g := smallGen(b, 20)
	tree := g.Tree()
	heart, _ := tree.Lookup("Heart")
	rng := rand.New(rand.NewSource(1))
	src := g.NewDocSource(heart, nil, rng)
	var buf []string
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = src.GenDoc(rng, buf)
	}
}

func TestWordJitterDifferentiatesSiblings(t *testing.T) {
	// Two databases under the same category must disagree materially on
	// per-word prevalence (the heterogeneity shrinkage exploits), while
	// zero jitter makes them near-identical.
	build := func(jitter float64, stream int64) map[string]float64 {
		g, err := NewGenerator(Config{
			Tree: smallTree(), Seed: 55,
			GlobalVocabSize: 800, CategoryVocabBase: 500,
			WordJitterSigma: jitter,
		})
		if err != nil {
			t.Fatal(err)
		}
		heart, _ := g.Tree().Lookup("Heart")
		rng := subRNG(100, stream)
		src := g.NewDocSource(heart, nil, rng)
		counts := map[string]float64{}
		var buf []string
		for i := 0; i < 400; i++ {
			buf = src.GenDoc(rng, buf)
			seen := map[string]bool{}
			for _, w := range buf {
				if !seen[w] {
					seen[w] = true
					counts[w]++
				}
			}
		}
		return counts
	}
	divergence := func(jitter float64) float64 {
		a := build(jitter, 1)
		b := build(jitter, 2)
		var d, n float64
		for w, ca := range a {
			if ca < 20 {
				continue // compare reasonably observed words only
			}
			cb := b[w]
			d += math.Abs(ca-cb) / (ca + cb + 1)
			n++
		}
		return d / n
	}
	low := divergence(-1) // disabled
	high := divergence(1.2)
	if high <= low {
		t.Errorf("word jitter did not differentiate siblings: low %v, high %v", low, high)
	}
}

func TestQueryFillersAreMostlyGeneric(t *testing.T) {
	// Filler words should skew toward the global vocabulary (generic
	// query verbiage); the topical signal is carried by the key terms.
	g := smallGen(t, 77)
	bed, err := BuildWeb(g, WebConfig{PerLeaf: 2, Extra: 0, MinSize: 100, MaxSize: 250, Seed: 78})
	if err != nil {
		t.Fatal(err)
	}
	spec := QuerySpec{Count: 10, MinLen: 10, MaxLen: 20, KeyRankLo: 5, KeyRankHi: 120, MinRelevant: 3, Seed: 79}
	if err := GenQueries(bed, spec); err != nil {
		t.Fatal(err)
	}
	var global, other int
	for _, q := range bed.Queries {
		key := map[string]bool{}
		for _, k := range q.Key {
			key[k] = true
		}
		for _, w := range q.Terms {
			if key[w] {
				continue
			}
			if w[0] == 'g' {
				global++
			} else {
				other++
			}
		}
	}
	// Half the filler draws target the global vocabulary; allow
	// sampling noise but catch a regression to mostly-topical fillers
	// (which would let selection algorithms route queries without the
	// key terms, hiding the incomplete-summary problem).
	frac := float64(global) / float64(global+other)
	if frac < 0.3 {
		t.Errorf("fillers: %d global vs %d topical (%.0f%%); want a substantial generic share",
			global, other, 100*frac)
	}
}
