package synth

import (
	"errors"
	"fmt"

	"repro/internal/hierarchy"
)

// Query is one evaluation query with its generation-time information
// need. Relevance is defined independently of any selection algorithm:
// a document is relevant iff it contains at least MinMatch of the Key
// terms. This plays the role of the human relevance judgments attached
// to the TREC query sets (Section 6.2).
type Query struct {
	ID int
	// Terms is the full query as issued to the metasearcher.
	Terms []string
	// Key are the information-need terms that define relevance.
	Key []string
	// MinMatch is the number of Key terms a relevant document contains.
	MinMatch int
	// Topic is the leaf category the information need was drawn from.
	Topic hierarchy.NodeID
}

// RelevantIn counts the documents of db relevant to q — the r(q, D) of
// Section 6.2, computed exactly (the "human judge" of the testbed).
func (q Query) RelevantIn(db *Database) int {
	return db.Index.CountDocsWithAtLeast(q.Key, q.MinMatch)
}

// QuerySpec controls workload generation.
type QuerySpec struct {
	// Count queries are generated (default 50, matching the paper's
	// 50-query TREC workloads).
	Count int
	// MinLen and MaxLen bound the query length in words. The paper's
	// TREC-4 queries are long (8-34 words, mean 16.75); TREC-6 queries
	// are short (2-5 words, mean 2.75).
	MinLen, MaxLen int
	// MinKey and MaxKey bound the number of information-need key terms
	// (defaults 2 and 4; key terms always also appear in the query).
	MinKey, MaxKey int
	// KeyRankLo and KeyRankHi bound the vocabulary rank band that key
	// terms are drawn from (defaults 15 and 350): deep enough to be
	// reasonably rare — the regime where incomplete summaries hurt —
	// but frequent enough that relevant documents exist.
	KeyRankLo, KeyRankHi int
	// MinRelevant is the minimum total number of relevant documents a
	// query must have across the testbed (default 10; queries failing
	// it are regenerated).
	MinRelevant int
	// Seed drives workload randomness.
	Seed int64
}

func (s QuerySpec) withDefaults() QuerySpec {
	if s.Count == 0 {
		s.Count = 50
	}
	if s.MinLen == 0 {
		s.MinLen = 8
	}
	if s.MaxLen == 0 {
		s.MaxLen = 34
	}
	if s.MinKey == 0 {
		s.MinKey = 2
	}
	if s.MaxKey == 0 {
		s.MaxKey = 4
	}
	if s.KeyRankLo == 0 {
		s.KeyRankLo = 15
	}
	if s.KeyRankHi == 0 {
		s.KeyRankHi = 350
	}
	if s.MinRelevant == 0 {
		s.MinRelevant = 10
	}
	return s
}

// TREC4QuerySpec returns the long-query workload shape (8-34 words).
func TREC4QuerySpec(seed int64) QuerySpec {
	return QuerySpec{MinLen: 8, MaxLen: 34, Seed: seed}.withDefaults()
}

// TREC6QuerySpec returns the short-query workload shape (2-5 words).
func TREC6QuerySpec(seed int64) QuerySpec {
	return QuerySpec{MinLen: 2, MaxLen: 5, Seed: seed}.withDefaults()
}

// GenQueries generates spec.Count queries against the testbed and
// attaches them to it. Each query targets a leaf topic present in the
// testbed; its key terms are mid-rank words of that topic's vocabulary,
// validated to have at least MinRelevant relevant documents overall.
func GenQueries(bed *Testbed, spec QuerySpec) error {
	spec = spec.withDefaults()
	if spec.MaxLen < spec.MinLen || spec.MaxKey < spec.MinKey {
		return errors.New("synth: invalid query length bounds")
	}
	g := bed.Gen
	tree := bed.Tree
	leaves := tree.Leaves()
	rng := subRNG(spec.Seed, 0x9e5)

	// totalRelevant computes the testbed-wide relevant document count.
	totalRelevant := func(key []string, minMatch int) int {
		var n int
		for _, db := range bed.Databases {
			n += db.Index.CountDocsWithAtLeast(key, minMatch)
		}
		return n
	}
	// dfAcross sums a term's document frequency across the testbed.
	dfAcross := func(term string) int {
		var n int
		for _, db := range bed.Databases {
			n += db.Index.DocFreq(term)
		}
		return n
	}

	// Weight leaves by their presence in the testbed (probed via a few
	// head words of each leaf's vocabulary), so queries target topics
	// the collection actually covers — as TREC topics do.
	leafCum := make([]float64, len(leaves))
	var cum float64
	for i, leaf := range leaves {
		v := g.CategoryVocab(leaf)
		w := 1e-6
		if v != nil {
			for r := 0; r < 5 && r < v.Len(); r++ {
				w += float64(dfAcross(v.Word(r)))
			}
		}
		cum += w
		leafCum[i] = cum
	}
	pickLeaf := func() hierarchy.NodeID {
		u := rng.Float64() * cum
		for i, c := range leafCum {
			if u < c {
				return leaves[i]
			}
		}
		return leaves[len(leaves)-1]
	}

	bed.Queries = bed.Queries[:0]
	const maxAttemptsPerQuery = 200
	for qi := 0; qi < spec.Count; qi++ {
		var q Query
		ok := false
		for attempt := 0; attempt < maxAttemptsPerQuery; attempt++ {
			leaf := pickLeaf()
			vocab := g.CategoryVocab(leaf)
			if vocab == nil {
				continue
			}
			nKey := spec.MinKey + rng.Intn(spec.MaxKey-spec.MinKey+1)
			hi := spec.KeyRankHi
			if hi >= vocab.Len() {
				hi = vocab.Len() - 1
			}
			if hi <= spec.KeyRankLo {
				continue
			}
			key := make([]string, 0, nKey)
			seen := map[string]bool{}
			// Bound the draws: a sparsely represented leaf may not have
			// nKey usable words in the band at all, in which case we
			// abandon this leaf and redraw.
			for draws := 0; len(key) < nKey && draws < 4*(hi-spec.KeyRankLo); draws++ {
				// Quadratic bias toward the head of the band: key terms
				// should be infrequent (the regime where incomplete
				// summaries hurt) yet present often enough that
				// relevant documents exist.
				u := rng.Float64()
				w := vocab.Word(spec.KeyRankLo + int(u*u*float64(hi-spec.KeyRankLo)))
				if seen[w] {
					continue
				}
				seen[w] = true
				// Every key term must actually occur somewhere.
				if dfAcross(w) < 3 {
					continue
				}
				key = append(key, w)
			}
			if len(key) < nKey {
				continue
			}
			minMatch := 2
			if len(key) < 2 {
				minMatch = len(key)
			}
			if totalRelevant(key, minMatch) < spec.MinRelevant {
				continue
			}
			length := spec.MinLen + rng.Intn(spec.MaxLen-spec.MinLen+1)
			if length < len(key) {
				length = len(key)
			}
			terms := fillQuery(g, tree, leaf, key, length, rng)
			q = Query{
				ID:       qi + 1,
				Terms:    terms,
				Key:      key,
				MinMatch: minMatch,
				Topic:    leaf,
			}
			ok = true
			break
		}
		if !ok {
			return fmt.Errorf("synth: could not generate query %d after %d attempts", qi+1, maxAttemptsPerQuery)
		}
		bed.Queries = append(bed.Queries, q)
	}
	return nil
}

// fillQuery pads the key terms with topical filler words — drawn from
// the head of the topic's vocabulary, its ancestors', and the global
// vocabulary — up to the requested length, without duplicates.
func fillQuery(g *Generator, tree *hierarchy.Tree, leaf hierarchy.NodeID, key []string, length int, rng interface{ Intn(int) int }) []string {
	terms := make([]string, 0, length)
	used := map[string]bool{}
	for _, k := range key {
		terms = append(terms, k)
		used[k] = true
	}
	path := tree.Path(leaf)
	pickFrom := func(v *Vocabulary, band int) (string, bool) {
		if v == nil || v.Len() == 0 {
			return "", false
		}
		if band > v.Len() {
			band = v.Len()
		}
		w := v.Word(rng.Intn(band))
		if used[w] {
			return "", false
		}
		return w, true
	}
	// Filler words skew generic — mostly global head words that occur
	// in nearly every database, some broader-category words, and only
	// occasionally another leaf word. Real query verbiage is common
	// vocabulary; the topical signal is carried by the key terms. (If
	// fillers were strongly topical, even a selection algorithm whose
	// summaries missed every key term could route the query perfectly,
	// and the incomplete-summary problem the paper studies would not
	// be visible.)
	guard := 0
	for len(terms) < length && guard < length*50 {
		guard++
		var w string
		var ok bool
		switch rng.Intn(6) {
		case 0, 1, 2:
			w, ok = pickFrom(g.GlobalVocab(), 150)
		case 3, 4:
			// A random ancestor (possibly the leaf again for depth-1).
			anc := path[1+rng.Intn(len(path)-1)]
			w, ok = pickFrom(g.CategoryVocab(anc), 80)
		default:
			w, ok = pickFrom(g.CategoryVocab(leaf), 60)
		}
		if !ok {
			continue
		}
		used[w] = true
		terms = append(terms, w)
	}
	return terms
}
