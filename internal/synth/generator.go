package synth

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/hierarchy"
)

// Config parameterizes the generative model. The zero value of any field
// is replaced by the documented default, so Config{Tree: t, Seed: s} is
// a fully usable configuration.
type Config struct {
	// Tree is the topic hierarchy (required).
	Tree *hierarchy.Tree
	// Seed drives all randomness derived from this generator.
	Seed int64

	// GlobalVocabSize is the size of the topic-neutral vocabulary
	// shared by every document (default 6000 words).
	GlobalVocabSize int
	// GlobalExponent is the Zipf exponent of the global vocabulary
	// (default 1.05).
	GlobalExponent float64

	// CategoryVocabBase is the vocabulary size of a depth-1 category;
	// deeper categories shrink by CategoryVocabDecay per level
	// (defaults 2600 and 0.8: depths 1..3 get 2600, 2080, 1664 words).
	CategoryVocabBase  int
	CategoryVocabDecay float64
	// CategoryExponent is the Zipf exponent of category vocabularies
	// (default 0.95; flatter than the global one so topical tails are
	// long, which is what samples miss).
	CategoryExponent float64

	// PrivateVocabSize is the size of each database-private vocabulary
	// (default 400) and PrivateExponent its Zipf exponent (default 1.0).
	PrivateVocabSize int
	PrivateExponent  float64

	// DocLenMean and DocLenSigma give the lognormal document length
	// (defaults 110 tokens and 0.35).
	DocLenMean  int
	DocLenSigma float64

	// MixGlobal and MixPrivate are the mixture weights of the global
	// and private components (defaults 0.30 and 0.08); the remainder is
	// split across the category path with weight growing toward the
	// leaf. WeightJitterSigma perturbs all weights per database
	// (default 0.25), so sibling databases have related but distinct
	// word distributions.
	MixGlobal         float64
	MixPrivate        float64
	WeightJitterSigma float64

	// WordJitterSigma is the per-database, per-word lognormal jitter of
	// topical word probabilities (default 1.1). This is what makes
	// sibling databases *complementary* rather than identical: a word
	// damped in one database remains common in its category mates —
	// the "hemophilia missing from PubMed's sample but present in other
	// Health summaries" phenomenon the paper's shrinkage exploits
	// (Example 1). Global-vocabulary jitter is a quarter of this
	// (function words are stable across sources). Negative disables.
	WordJitterSigma float64
}

func (c Config) withDefaults() Config {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	deff := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.GlobalVocabSize, 6000)
	deff(&c.GlobalExponent, 1.05)
	def(&c.CategoryVocabBase, 2600)
	deff(&c.CategoryVocabDecay, 0.8)
	deff(&c.CategoryExponent, 0.95)
	def(&c.PrivateVocabSize, 400)
	deff(&c.PrivateExponent, 1.0)
	def(&c.DocLenMean, 110)
	deff(&c.DocLenSigma, 0.35)
	deff(&c.MixGlobal, 0.30)
	deff(&c.MixPrivate, 0.08)
	deff(&c.WeightJitterSigma, 0.25)
	deff(&c.WordJitterSigma, 1.1)
	if c.WordJitterSigma < 0 {
		c.WordJitterSigma = 0
	}
	return c
}

// Generator owns the vocabularies of one synthetic world and produces
// documents for databases classified anywhere in the hierarchy.
// Generators are immutable after construction and safe for concurrent
// use provided each goroutine uses its own *rand.Rand.
type Generator struct {
	cfg    Config
	tree   *hierarchy.Tree
	global *Vocabulary
	cat    []*Vocabulary // indexed by NodeID; nil for the root
}

// NewGenerator builds the vocabularies for every category of cfg.Tree.
func NewGenerator(cfg Config) (*Generator, error) {
	if cfg.Tree == nil {
		return nil, errors.New("synth: Config.Tree is required")
	}
	cfg = cfg.withDefaults()
	g := &Generator{cfg: cfg, tree: cfg.Tree}
	var err error
	g.global, err = NewVocabulary("g", cfg.GlobalVocabSize, cfg.GlobalExponent, 1)
	if err != nil {
		return nil, err
	}
	g.cat = make([]*Vocabulary, cfg.Tree.Len())
	for _, id := range cfg.Tree.All() {
		if id == hierarchy.Root {
			continue
		}
		depth := cfg.Tree.Depth(id)
		size := int(float64(cfg.CategoryVocabBase) * math.Pow(cfg.CategoryVocabDecay, float64(depth-1)))
		if size < 50 {
			size = 50
		}
		prefix := categoryPrefix(cfg.Tree.Node(id).Name, int(id))
		g.cat[id], err = NewVocabulary(prefix, size, cfg.CategoryExponent, 1)
		if err != nil {
			return nil, err
		}
	}
	return g, nil
}

// categoryPrefix builds a readable, unique word prefix for a category,
// e.g. "aids17_" for node 17 named AIDS.
func categoryPrefix(name string, id int) string {
	short := make([]byte, 0, 8)
	for i := 0; i < len(name) && len(short) < 6; i++ {
		ch := name[i]
		switch {
		case ch >= 'a' && ch <= 'z':
			short = append(short, ch)
		case ch >= 'A' && ch <= 'Z':
			short = append(short, ch-'A'+'a')
		}
	}
	return string(short) + "_" + itoa(id) + "_"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Tree returns the hierarchy this generator was built over.
func (g *Generator) Tree() *hierarchy.Tree { return g.tree }

// Config returns the effective (defaulted) configuration.
func (g *Generator) Config() Config { return g.cfg }

// GlobalVocab returns the topic-neutral vocabulary.
func (g *Generator) GlobalVocab() *Vocabulary { return g.global }

// CategoryVocab returns the vocabulary of a category, or nil for the root.
func (g *Generator) CategoryVocab(id hierarchy.NodeID) *Vocabulary { return g.cat[id] }

// NewPrivateVocab creates a database- (or site-) private vocabulary with
// a unique prefix.
func (g *Generator) NewPrivateVocab(prefix string) (*Vocabulary, error) {
	return NewVocabulary(prefix, g.cfg.PrivateVocabSize, g.cfg.PrivateExponent, 0)
}

// DocSource generates documents for one database: a fixed mixture over
// the global vocabulary, the vocabularies along the database's category
// path, and the database's private vocabulary.
type DocSource struct {
	g   *Generator
	mix mixture
}

// NewDocSource builds the jittered mixture for a database classified
// under cat. private may be nil (no private component). jitter drives
// the per-database weight perturbation and must be deterministic per
// database for reproducibility.
func (g *Generator) NewDocSource(cat hierarchy.NodeID, private *Vocabulary, jitter *rand.Rand) *DocSource {
	cfg := g.cfg
	var comps []component
	jit := func(w float64) float64 {
		if cfg.WeightJitterSigma <= 0 {
			return w
		}
		return w * math.Exp(cfg.WeightJitterSigma*jitter.NormFloat64())
	}
	comps = append(comps, component{
		dist:   g.global.jittered(jitter, cfg.WordJitterSigma/4),
		weight: jit(cfg.MixGlobal),
	})
	if private != nil {
		comps = append(comps, component{dist: private.base(), weight: jit(cfg.MixPrivate)})
	}
	path := g.tree.Path(cat)
	// Drop the root (its "vocabulary" is the global one); weight the
	// remaining path nodes increasingly toward the leaf.
	topical := 1 - cfg.MixGlobal - cfg.MixPrivate
	var norm float64
	for i := 1; i < len(path); i++ {
		norm += math.Pow(float64(i), 1.5)
	}
	for i := 1; i < len(path); i++ {
		w := topical
		if norm > 0 {
			w = topical * math.Pow(float64(i), 1.5) / norm
		}
		comps = append(comps, component{
			dist:   g.cat[path[i]].jittered(jitter, cfg.WordJitterSigma),
			weight: jit(w),
		})
	}
	return &DocSource{g: g, mix: newMixture(comps)}
}

// DocLen draws a document length from the configured lognormal,
// clipped to [20, 600] tokens.
func (g *Generator) DocLen(rng *rand.Rand) int {
	cfg := g.cfg
	mu := math.Log(float64(cfg.DocLenMean)) - cfg.DocLenSigma*cfg.DocLenSigma/2
	l := int(math.Round(math.Exp(mu + cfg.DocLenSigma*rng.NormFloat64())))
	if l < 20 {
		l = 20
	}
	if l > 600 {
		l = 600
	}
	return l
}

// GenDoc generates one document's terms, reusing buf when it has
// capacity. The returned slice is only valid until the next call with
// the same buffer.
func (s *DocSource) GenDoc(rng *rand.Rand, buf []string) []string {
	n := s.g.DocLen(rng)
	if cap(buf) < n {
		buf = make([]string, 0, n)
	}
	buf = buf[:0]
	for i := 0; i < n; i++ {
		buf = append(buf, s.mix.sample(rng))
	}
	return buf
}
