// Package synth generates the evaluation testbeds that stand in for the
// paper's data sets (Section 5.1): a "Web" testbed of 315 databases
// classified under a 72-node topic hierarchy, and TREC4/TREC6-style
// testbeds of 100 topically clustered databases each, together with
// query workloads and exact relevance judgments.
//
// The generative model is built so that the phenomena the paper exploits
// hold by construction:
//
//   - Word frequencies within every vocabulary follow a Zipf-Mandelbrot
//     law, so any moderate document sample misses many low-frequency
//     words (the sparse-data problem of Section 2.2).
//   - A document from a database classified under category C mixes words
//     from a global vocabulary, the vocabularies of every ancestor of C,
//     C's own vocabulary, and a database-private vocabulary. Sibling
//     databases therefore share topical vocabulary (the premise of
//     shrinkage, Section 3.1) while still containing words no other
//     database has (which is what makes shrinkage imprecise, Section 6.1).
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/zipf"
)

// Vocabulary is an ordered word list with a Zipf-Mandelbrot sampler
// over its ranks: Word(0) is the most probable word.
type Vocabulary struct {
	words   []string
	sampler *zipf.Sampler
}

// NewVocabulary creates n words named prefix0..prefix{n-1} distributed
// with Zipf-Mandelbrot exponent s and shift c.
func NewVocabulary(prefix string, n int, s, c float64) (*Vocabulary, error) {
	if n <= 0 {
		return nil, fmt.Errorf("synth: vocabulary %q must have at least one word", prefix)
	}
	sampler, err := zipf.NewSampler(n, s, c)
	if err != nil {
		return nil, err
	}
	words := make([]string, n)
	for i := range words {
		words[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return &Vocabulary{words: words, sampler: sampler}, nil
}

// Len returns the number of words.
func (v *Vocabulary) Len() int { return len(v.words) }

// Word returns the word at rank r (0-based, most frequent first).
func (v *Vocabulary) Word(r int) string { return v.words[r] }

// Sample draws one word according to the vocabulary's distribution.
func (v *Vocabulary) Sample(rng *rand.Rand) string {
	return v.words[v.sampler.Sample(rng)]
}

// Prob returns the probability of drawing the word at rank r.
func (v *Vocabulary) Prob(r int) float64 { return v.sampler.Prob(r) }

// distribution is a categorical distribution over a vocabulary's
// words: either the vocabulary's base Zipf-Mandelbrot law (nil cdf) or
// a database-specific jittered version of it.
type distribution struct {
	vocab *Vocabulary
	cdf   []float64
}

// sample draws one word.
func (d *distribution) sample(rng *rand.Rand) string {
	if d.cdf == nil {
		return d.vocab.Sample(rng)
	}
	u := rng.Float64()
	i := sort.SearchFloat64s(d.cdf, u)
	if i >= len(d.cdf) {
		i = len(d.cdf) - 1
	}
	return d.vocab.Word(i)
}

// base returns the unjittered distribution of a vocabulary.
func (v *Vocabulary) base() *distribution { return &distribution{vocab: v} }

// jittered returns a copy of the vocabulary's distribution with each
// word's probability multiplied by an independent lognormal factor
// exp(sigma·N(0,1)) and renormalized. This produces the per-source
// word-prevalence differences that make topically related databases
// complement (rather than duplicate) each other.
func (v *Vocabulary) jittered(rng *rand.Rand, sigma float64) *distribution {
	if sigma <= 0 {
		return v.base()
	}
	cdf := make([]float64, v.Len())
	var sum float64
	for r := 0; r < v.Len(); r++ {
		sum += v.Prob(r) * math.Exp(sigma*rng.NormFloat64())
		cdf[r] = sum
	}
	if sum <= 0 {
		return v.base()
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[len(cdf)-1] = 1
	return &distribution{vocab: v, cdf: cdf}
}

// component pairs a word distribution with a mixture weight.
type component struct {
	dist   *distribution
	weight float64
}

// mixture is a normalized set of components with cumulative weights for
// O(log n)-free selection (n is tiny, linear scan is fine).
type mixture struct {
	comps []component
}

func newMixture(comps []component) mixture {
	var total float64
	for _, c := range comps {
		total += c.weight
	}
	out := make([]component, len(comps))
	copy(out, comps)
	if total > 0 {
		for i := range out {
			out[i].weight /= total
		}
	}
	return mixture{comps: out}
}

// sample draws a word: first a component by weight, then a word from it.
func (m mixture) sample(rng *rand.Rand) string {
	u := rng.Float64()
	for _, c := range m.comps {
		if u < c.weight {
			return c.dist.sample(rng)
		}
		u -= c.weight
	}
	return m.comps[len(m.comps)-1].dist.sample(rng)
}

// subSeed derives a deterministic child seed from a parent seed and a
// stream of identifiers, via a splitmix64-style mix. It lets every
// database, document batch, and sampling run get an independent,
// reproducible RNG.
func subSeed(seed int64, stream ...int64) int64 {
	z := uint64(seed) ^ 0x9e3779b97f4a7c15
	for _, s := range stream {
		z ^= uint64(s) + 0x9e3779b97f4a7c15 + (z << 6) + (z >> 2)
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return int64(z)
}

// subRNG returns a rand.Rand seeded from subSeed.
func subRNG(seed int64, stream ...int64) *rand.Rand {
	return rand.New(rand.NewSource(subSeed(seed, stream...)))
}

// SubSeed derives a deterministic child seed; exported for callers that
// need reproducible per-entity randomness (experiment drivers).
func SubSeed(seed int64, stream ...int64) int64 { return subSeed(seed, stream...) }

// SubRNG returns a rand.Rand seeded with SubSeed.
func SubRNG(seed int64, stream ...int64) *rand.Rand { return subRNG(seed, stream...) }
