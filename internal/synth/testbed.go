package synth

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/hierarchy"
	"repro/internal/index"
)

// Database is one searchable text database of a testbed, together with
// its ground-truth classification (the role the Google Directory plays
// for the paper's Web data set).
type Database struct {
	// Name identifies the database (e.g. "www.heart-2.example" or "all-17").
	Name string
	// Category is the true classification of the database. For
	// cluster-built (TREC-style) databases it is the dominant source
	// category of the cluster's documents.
	Category hierarchy.NodeID
	// Index is the database's search engine.
	Index *index.Index
}

// Size returns the number of documents |D|.
func (d *Database) Size() int { return d.Index.NumDocs() }

// Testbed bundles the databases of one evaluation data set with the
// world they were generated from.
type Testbed struct {
	Name      string
	Tree      *hierarchy.Tree
	Gen       *Generator
	Databases []*Database
	Queries   []Query
}

// DatabaseByName returns the named database, or nil.
func (t *Testbed) DatabaseByName(name string) *Database {
	for _, d := range t.Databases {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// TotalDocs returns the number of documents across all databases.
func (t *Testbed) TotalDocs() int {
	var n int
	for _, d := range t.Databases {
		n += d.Size()
	}
	return n
}

// WebConfig controls the Web testbed builder.
type WebConfig struct {
	// PerLeaf databases are created for every leaf category (default 5,
	// as in the paper's "top-5 real web databases from each of the 54
	// leaf categories").
	PerLeaf int
	// Extra arbitrary databases classified under random non-root
	// categories of any depth (default 45, for the paper's total of 315).
	Extra int
	// MinSize and MaxSize bound the log-uniform database size
	// distribution (defaults 100 and 3000; the paper's Web databases
	// span 100 to ~376,000 documents — we keep the two-and-a-half
	// orders of magnitude spread at laptop scale).
	MinSize, MaxSize int
	// Seed drives database composition (sizes, private vocabularies,
	// per-database mixture jitter, documents).
	Seed int64
}

func (c WebConfig) withDefaults() WebConfig {
	if c.PerLeaf == 0 {
		c.PerLeaf = 5
	}
	if c.Extra == 0 {
		c.Extra = 45
	}
	if c.MinSize == 0 {
		c.MinSize = 100
	}
	if c.MaxSize == 0 {
		c.MaxSize = 3000
	}
	return c
}

// BuildWeb generates the Web testbed: PerLeaf databases per leaf
// category plus Extra databases under arbitrary categories, mirroring
// the construction of the paper's 315-database Web set.
func BuildWeb(g *Generator, cfg WebConfig) (*Testbed, error) {
	cfg = cfg.withDefaults()
	if cfg.MinSize <= 0 || cfg.MaxSize < cfg.MinSize {
		return nil, errors.New("synth: invalid Web size bounds")
	}
	tree := g.Tree()
	bed := &Testbed{Name: "Web", Tree: tree, Gen: g}

	type assignment struct {
		cat  hierarchy.NodeID
		name string
	}
	var assigns []assignment
	for _, leaf := range tree.Leaves() {
		base := strings.ToLower(strings.ReplaceAll(tree.Node(leaf).Name, " ", ""))
		for i := 0; i < cfg.PerLeaf; i++ {
			assigns = append(assigns, assignment{
				cat:  leaf,
				name: fmt.Sprintf("www.%s-%d.example", base, i+1),
			})
		}
	}
	pickRng := subRNG(cfg.Seed, 0x5eb)
	nonRoot := tree.All()[1:]
	for i := 0; i < cfg.Extra; i++ {
		cat := nonRoot[pickRng.Intn(len(nonRoot))]
		base := strings.ToLower(strings.ReplaceAll(tree.Node(cat).Name, " ", ""))
		assigns = append(assigns, assignment{
			cat:  cat,
			name: fmt.Sprintf("www.%s-extra%d.example", base, i+1),
		})
	}

	logMin, logMax := math.Log(float64(cfg.MinSize)), math.Log(float64(cfg.MaxSize))
	for i, a := range assigns {
		rng := subRNG(cfg.Seed, 1, int64(i))
		size := int(math.Round(math.Exp(logMin + rng.Float64()*(logMax-logMin))))
		db, err := buildDatabase(g, a.name, a.cat, size, rng)
		if err != nil {
			return nil, err
		}
		bed.Databases = append(bed.Databases, db)
	}
	return bed, nil
}

// buildDatabase generates one database of the given size classified
// under cat, with its own private vocabulary and mixture jitter.
func buildDatabase(g *Generator, name string, cat hierarchy.NodeID, size int, rng *rand.Rand) (*Database, error) {
	private, err := g.NewPrivateVocab("x" + sanitize(name) + "_")
	if err != nil {
		return nil, err
	}
	src := g.NewDocSource(cat, private, rng)
	b := index.NewBuilder(size)
	var buf []string
	for i := 0; i < size; i++ {
		buf = src.GenDoc(rng, buf)
		b.Add(buf)
	}
	return &Database{Name: name, Category: cat, Index: b.Build()}, nil
}

// sanitize reduces a database name to a compact vocabulary prefix.
func sanitize(name string) string {
	var sb strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			sb.WriteRune(r - 'A' + 'a')
		}
		if sb.Len() >= 12 {
			break
		}
	}
	return sb.String()
}
