package resilience

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"

	"repro/internal/telemetry"
)

// Set is the per-node breaker collection of one metasearcher: one
// Breaker per database name, created on first use. It keeps the
// aggregate state gauges (breakers_closed / breakers_half_open /
// breakers_open) and the breaker_trips_total counter current, and
// serves per-node detail at /debug/breakers. All methods are safe for
// concurrent use and on a nil receiver (the disabled-breakers case).
type Set struct {
	opts BreakerOptions

	mu sync.RWMutex
	m  map[string]*Breaker

	closed   *telemetry.Gauge
	halfOpen *telemetry.Gauge
	open     *telemetry.Gauge
	trips    *telemetry.Counter
}

// NewSet creates a breaker set; every breaker it mints uses opts. The
// gauge and counter series are registered immediately (reg may be nil).
func NewSet(opts BreakerOptions, reg *telemetry.Registry) *Set {
	for _, d := range []struct{ name, help string }{
		{"breakers_closed", "Circuit breakers currently closed (healthy targets)."},
		{"breakers_half_open", "Circuit breakers currently half-open (probing recovery)."},
		{"breakers_open", "Circuit breakers currently open (targets routed around)."},
		{"breaker_trips_total", "Circuit-breaker transitions from closed to open."},
	} {
		reg.Describe(d.name, d.help)
	}
	return &Set{
		opts:     opts,
		m:        make(map[string]*Breaker),
		closed:   reg.Gauge("breakers_closed"),
		halfOpen: reg.Gauge("breakers_half_open"),
		open:     reg.Gauge("breakers_open"),
		trips:    reg.Counter("breaker_trips_total"),
	}
}

// Get returns the node's breaker, creating it (closed) on first use.
// A nil set returns a nil breaker, which admits everything.
func (s *Set) Get(name string) *Breaker {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	b := s.m[name]
	s.mu.RUnlock()
	if b != nil {
		return b
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b = s.m[name]; b != nil {
		return b
	}
	b = newBreaker(s.opts, s.onChange)
	s.m[name] = b
	s.closed.Add(1)
	return b
}

// Seed returns the named breaker like Get, but a breaker that does not
// exist yet is created in the given state instead of closed. An
// existing breaker keeps its state untouched — seeding is for targets
// that just joined the topology (a swapped-in replica starts half-open:
// its first real call is the trial), and must never clobber the
// carried-over state of a survivor.
func (s *Set) Seed(name string, st State) *Breaker {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	b := s.m[name]
	if b == nil {
		b = newBreaker(s.opts, s.onChange)
		s.m[name] = b
		s.closed.Add(1)
		if st != Closed {
			b.forceState(st)
		}
	}
	s.mu.Unlock()
	return b
}

// Remove drops the named breaker from the set: the aggregate gauges
// forget its state and later Records on it (stragglers from calls that
// were in flight when its target left the topology) no longer move
// them. Safe if the name was never in the set.
func (s *Set) Remove(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	b := s.m[name]
	delete(s.m, name)
	s.mu.Unlock()
	if b == nil {
		return
	}
	s.stateGauge(b.detach()).Add(-1)
}

// stateGauge maps a state to its aggregate gauge.
func (s *Set) stateGauge(st State) *telemetry.Gauge {
	switch st {
	case HalfOpen:
		return s.halfOpen
	case Open:
		return s.open
	default:
		return s.closed
	}
}

// onChange keeps the aggregate gauges and trip counter in step with
// breaker transitions.
func (s *Set) onChange(from, to State) {
	s.stateGauge(from).Add(-1)
	s.stateGauge(to).Add(1)
	if to == Open {
		s.trips.Inc()
	}
}

// Snapshot returns every breaker's state, sorted by database name.
func (s *Set) Snapshot() []BreakerSnapshot {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	names := make([]string, 0, len(s.m))
	for name := range s.m {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	out := make([]BreakerSnapshot, 0, len(names))
	for _, name := range names {
		s.mu.RLock()
		b := s.m[name]
		s.mu.RUnlock()
		snap := b.Snapshot()
		snap.Database = name
		out = append(out, snap)
	}
	return out
}

// Handler serves the set as JSON — the /debug/breakers endpoint:
//
//	{"breakers": [{"database": ..., "state": "open", ...}, ...]}
//
// A nil set serves an empty list, so the endpoint can be mounted
// unconditionally.
func (s *Set) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snaps := s.Snapshot()
		if snaps == nil {
			snaps = []BreakerSnapshot{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Breakers []BreakerSnapshot `json:"breakers"`
		}{snaps})
	})
}
