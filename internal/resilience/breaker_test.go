package resilience

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fakeClock is a settable clock for breaker cooldown tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBreakerStateMachine(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerOptions{
		Window:           4,
		FailureThreshold: 0.5,
		MinSamples:       2,
		Cooldown:         time.Second,
		Clock:            clk.now,
	})

	if b.State() != Closed {
		t.Fatalf("new breaker state = %v, want closed", b.State())
	}
	// One failure alone must not trip (MinSamples = 2).
	if !b.Allow() {
		t.Fatal("closed breaker denied a call")
	}
	b.Record(false)
	if b.State() != Closed {
		t.Fatalf("state after 1 failure = %v, want closed (below MinSamples)", b.State())
	}
	// Second failure: rate 2/2 >= 0.5 → open.
	b.Allow()
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state after 2/2 failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}
	// Cooldown elapses: exactly one half-open trial is admitted.
	clk.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("cooled-down breaker denied the half-open trial")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state during trial = %v, want half_open", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second call while the trial is in flight")
	}
	// Failed trial → open again, fresh cooldown.
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state after failed trial = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a call before the new cooldown")
	}
	// Successful trial closes the breaker and resets the window.
	clk.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("second trial denied")
	}
	b.Record(true)
	if b.State() != Closed {
		t.Fatalf("state after successful trial = %v, want closed", b.State())
	}
	// The reset window means one failure does not re-trip immediately.
	b.Allow()
	b.Record(false)
	if b.State() != Closed {
		t.Fatalf("state after 1 failure post-reset = %v, want closed", b.State())
	}
	snap := b.Snapshot()
	if snap.Trips != 1 {
		t.Errorf("snapshot trips = %d, want 1 (half-open re-trips do not count as window trips)", snap.Trips)
	}
	if snap.ShortCircuits == 0 {
		t.Error("snapshot short_circuits = 0, want > 0")
	}
}

func TestBreakerNeutralReleasesTrial(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerOptions{MinSamples: 1, Cooldown: time.Second, Clock: clk.now})
	b.Allow()
	b.Record(false) // trips (1/1 failure)
	clk.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("trial denied after cooldown")
	}
	b.RecordNeutral() // shed: no verdict
	if b.State() != HalfOpen {
		t.Fatalf("state after neutral trial = %v, want half_open", b.State())
	}
	if !b.Allow() {
		t.Fatal("trial slot not released by RecordNeutral")
	}
	b.Record(true)
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

func TestNilBreakerAndSet(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Error("nil breaker denied a call")
	}
	b.Record(false)
	b.RecordNeutral()
	if b.State() != Closed {
		t.Errorf("nil breaker state = %v, want closed", b.State())
	}
	var s *Set
	if s.Get("x") != nil {
		t.Error("nil set returned a non-nil breaker")
	}
	if s.Snapshot() != nil {
		t.Error("nil set returned a non-nil snapshot")
	}
}

func TestSetGaugesAndHandler(t *testing.T) {
	reg := telemetry.NewRegistry()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	s := NewSet(BreakerOptions{MinSamples: 1, Cooldown: time.Second, Clock: clk.now}, reg)

	a, b := s.Get("alpha"), s.Get("beta")
	if s.Get("alpha") != a {
		t.Fatal("Get is not idempotent")
	}
	if got := reg.Gauge("breakers_closed").Value(); got != 2 {
		t.Fatalf("breakers_closed = %v, want 2", got)
	}
	a.Allow()
	a.Record(false) // trip alpha
	if got := reg.Gauge("breakers_open").Value(); got != 1 {
		t.Fatalf("breakers_open = %v, want 1", got)
	}
	if got := reg.Counter("breaker_trips_total").Value(); got != 1 {
		t.Fatalf("breaker_trips_total = %v, want 1", got)
	}
	b.Allow()
	b.Record(true)

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/breakers", nil))
	var body struct {
		Breakers []BreakerSnapshot `json:"breakers"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Breakers) != 2 {
		t.Fatalf("handler returned %d breakers, want 2", len(body.Breakers))
	}
	if body.Breakers[0].Database != "alpha" || body.Breakers[0].State != "open" {
		t.Errorf("breakers[0] = %+v, want alpha open", body.Breakers[0])
	}
	if body.Breakers[1].Database != "beta" || body.Breakers[1].State != "closed" {
		t.Errorf("breakers[1] = %+v, want beta closed", body.Breakers[1])
	}
}

func TestHedgedPrimaryWins(t *testing.T) {
	winner, hedged, err := Hedged(context.Background(), time.Hour, func(ctx context.Context, attempt int) error {
		return nil
	})
	if err != nil || winner != 0 || hedged {
		t.Fatalf("fast primary: winner=%d hedged=%v err=%v, want 0/false/nil", winner, hedged, err)
	}
}

func TestHedgedHedgeWins(t *testing.T) {
	primaryCancelled := make(chan struct{})
	winner, hedged, err := Hedged(context.Background(), 5*time.Millisecond, func(ctx context.Context, attempt int) error {
		if attempt == 0 {
			<-ctx.Done() // primary hangs until cancelled by the winning hedge
			close(primaryCancelled)
			return ctx.Err()
		}
		return nil
	})
	if err != nil || winner != 1 || !hedged {
		t.Fatalf("hung primary: winner=%d hedged=%v err=%v, want 1/true/nil", winner, hedged, err)
	}
	select {
	case <-primaryCancelled:
	case <-time.After(time.Second):
		t.Fatal("losing primary was never cancelled")
	}
}

func TestHedgedBothFail(t *testing.T) {
	errPrimary := errors.New("primary down")
	errHedge := errors.New("hedge down")
	winner, hedged, err := Hedged(context.Background(), time.Millisecond, func(ctx context.Context, attempt int) error {
		if attempt == 0 {
			time.Sleep(10 * time.Millisecond) // outlive the hedge threshold
			return errPrimary
		}
		return errHedge
	})
	if !hedged {
		t.Fatal("hedge never launched")
	}
	if winner != 0 || !errors.Is(err, errPrimary) {
		t.Fatalf("both failed: winner=%d err=%v, want primary's error", winner, err)
	}
}

func TestHedgedPrimaryFailsFastNoHedge(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	winner, hedged, err := Hedged(context.Background(), time.Hour, func(ctx context.Context, attempt int) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || winner != 0 || hedged || calls != 1 {
		t.Fatalf("fast failure: winner=%d hedged=%v calls=%d err=%v, want 0/false/1/boom (errors are the retry layer's job, not the hedge's)",
			winner, hedged, calls, err)
	}
}

func TestHedgedDisabled(t *testing.T) {
	calls := 0
	if _, hedged, err := Hedged(context.Background(), 0, func(ctx context.Context, attempt int) error {
		calls++
		return nil
	}); hedged || err != nil || calls != 1 {
		t.Fatalf("after=0: hedged=%v calls=%d err=%v, want inline single call", hedged, calls, err)
	}
}

func TestProberClosesRecoveredBreaker(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewSet(BreakerOptions{MinSamples: 1, Cooldown: time.Millisecond}, reg)
	b := s.Get("node")
	b.Allow()
	b.Record(false) // trip
	if b.State() != Open {
		t.Fatal("breaker did not trip")
	}

	var mu sync.Mutex
	healthy := false
	pinged := make(chan struct{}, 16)
	p := NewProber(s, []ProbeTarget{{
		Name: "node",
		Ping: func(ctx context.Context) error {
			mu.Lock()
			defer mu.Unlock()
			select {
			case pinged <- struct{}{}:
			default:
			}
			if healthy {
				return nil
			}
			return errors.New("still down")
		},
	}}, ProberOptions{Interval: 5 * time.Millisecond, Metrics: reg})
	p.Start()
	defer p.Stop()

	// While the node is down, probes keep the breaker open.
	select {
	case <-pinged:
	case <-time.After(2 * time.Second):
		t.Fatal("prober never pinged the open node")
	}
	if b.State() == Closed {
		t.Fatal("breaker closed while the node was still down")
	}
	// The node recovers: a probe success must close the breaker without
	// any query traffic.
	mu.Lock()
	healthy = true
	mu.Unlock()
	deadline := time.Now().Add(2 * time.Second)
	for b.State() != Closed {
		if time.Now().After(deadline) {
			t.Fatal("breaker never closed after the node recovered")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if reg.Counter("health_probes_total").Value() == 0 {
		t.Error("health_probes_total is zero")
	}
	if reg.Counter("health_probe_failures_total").Value() == 0 {
		t.Error("health_probe_failures_total is zero despite failed probes")
	}
	p.Stop() // idempotent
}
