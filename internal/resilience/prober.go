package resilience

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// ProbeTarget is one node the prober may ping.
type ProbeTarget struct {
	// Name keys the node's breaker in the Set.
	Name string
	// Ping checks the node's health (a wire client's /v1/health call).
	Ping func(ctx context.Context) error
}

// ProberOptions tunes the background health prober.
type ProberOptions struct {
	// Interval is how often unhealthy nodes are probed (default 2s).
	Interval time.Duration
	// Timeout bounds each probe (default 1s).
	Timeout time.Duration
	// Metrics receives health_probes_total and
	// health_probe_failures_total (may be nil).
	Metrics *telemetry.Registry
}

// Prober pings the nodes whose breakers are not closed, feeding the
// results back into the breakers: an open breaker whose node recovers
// closes after one successful probe instead of waiting for live query
// traffic to roll the dice on its half-open trial. Healthy (closed)
// nodes are left alone — query traffic is their health check.
type Prober struct {
	set      *Set
	interval time.Duration
	timeout  time.Duration

	mu      sync.Mutex
	targets []ProbeTarget

	probes   *telemetry.Counter
	failures *telemetry.Counter

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewProber builds a prober over the given targets. Call Start to begin
// probing and Stop to halt it.
func NewProber(set *Set, targets []ProbeTarget, opts ProberOptions) *Prober {
	if opts.Interval <= 0 {
		opts.Interval = 2 * time.Second
	}
	if opts.Timeout <= 0 {
		opts.Timeout = time.Second
	}
	opts.Metrics.Describe("health_probes_total", "Background health probes sent to non-closed breaker targets.")
	opts.Metrics.Describe("health_probe_failures_total", "Background health probes that failed.")
	return &Prober{
		set:      set,
		targets:  targets,
		interval: opts.Interval,
		timeout:  opts.Timeout,
		probes:   opts.Metrics.Counter("health_probes_total"),
		failures: opts.Metrics.Counter("health_probe_failures_total"),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// SetTargets replaces the probe target list — the topology-swap hook.
// The next sweep probes the new list; a removed target is simply never
// probed again (its breaker's removal from the Set is the owner's job).
// An in-flight sweep holds the slice it started with, which is safe:
// probing a just-removed target once more is harmless, and the breaker
// Allow gate still serializes trials.
func (p *Prober) SetTargets(targets []ProbeTarget) {
	p.mu.Lock()
	p.targets = append([]ProbeTarget(nil), targets...)
	p.mu.Unlock()
}

// Start launches the probe loop in a background goroutine.
func (p *Prober) Start() {
	if p.started.CompareAndSwap(false, true) {
		go p.run()
	}
}

// Stop halts the probe loop and waits for in-flight probes to finish.
// Safe to call more than once, and before Start.
func (p *Prober) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	if p.started.Load() {
		<-p.done
	}
}

func (p *Prober) run() {
	defer close(p.done)
	ticker := time.NewTicker(p.interval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			p.sweep()
		}
	}
}

// sweep probes every currently-unhealthy target once, concurrently
// (a hung node's probe must not delay the others').
func (p *Prober) sweep() {
	p.mu.Lock()
	targets := p.targets
	p.mu.Unlock()
	var wg sync.WaitGroup
	for _, t := range targets {
		b := p.set.Get(t.Name)
		if b.State() == Closed {
			continue
		}
		if !b.Allow() {
			continue // open and still cooling down, or a trial in flight
		}
		wg.Add(1)
		go func(t ProbeTarget, b *Breaker) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), p.timeout)
			defer cancel()
			p.probes.Inc()
			err := t.Ping(ctx)
			if err != nil {
				p.failures.Inc()
			}
			b.Record(err == nil)
		}(t, b)
	}
	wg.Wait()
}
