// Package resilience is the fault-tolerance layer of the search
// fan-out: per-node circuit breakers that stop paying the retry budget
// for databases that keep failing, hedged requests that cut the tail
// latency a single slow node would otherwise impose on every query, and
// a background health prober that lets an open breaker close as soon as
// its node recovers.
//
// The paper's metasearcher fronts autonomous hidden-web databases that
// are slow, overloaded, or down; none of that may stall the merged
// answer. Everything in this package is mechanism only — the search
// fan-out (search.go) decides policy: what counts as a failure, what a
// shed response means, and how outcomes are audited.
package resilience

import (
	"sync"
	"time"
)

// State is a circuit breaker's position.
type State int

const (
	// Closed: calls flow normally; outcomes are tallied.
	Closed State = iota
	// HalfOpen: one trial call is allowed through; its outcome decides
	// between Closed and Open.
	HalfOpen
	// Open: calls are short-circuited without touching the node.
	Open
)

// String renders the state the way audit records and /debug/breakers
// spell it.
func (s State) String() string {
	switch s {
	case HalfOpen:
		return "half_open"
	case Open:
		return "open"
	default:
		return "closed"
	}
}

// BreakerOptions tunes one breaker. The zero value selects the
// defaults.
type BreakerOptions struct {
	// Window is how many recent call outcomes the failure rate is
	// computed over (default 20).
	Window int
	// FailureThreshold trips the breaker when the windowed failure
	// fraction reaches it (default 0.5).
	FailureThreshold float64
	// MinSamples is how many outcomes the window needs before the rate
	// is trusted: a single failure on a cold breaker must not black-hole
	// a node (default 3).
	MinSamples int
	// Cooldown is how long an open breaker waits before letting one
	// half-open trial through (default 5s).
	Cooldown time.Duration
	// Clock overrides time.Now (tests).
	Clock func() time.Time
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.Window <= 0 {
		o.Window = 20
	}
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 0.5
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 3
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 5 * time.Second
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// Breaker is a closed/open/half-open circuit breaker over one node.
// All methods are safe for concurrent use and on a nil receiver (a nil
// breaker admits everything), so disabling breakers needs no
// conditionals at call sites.
//
// The contract is Allow-then-Record: every call the breaker admits must
// report its outcome with exactly one Record or RecordNeutral, or a
// half-open breaker would leak its single trial slot.
type Breaker struct {
	opts     BreakerOptions
	onChange func(from, to State) // called with mu held; must not re-enter

	mu        sync.Mutex
	state     State
	outcomes  []bool // ring of the last Window outcomes
	next      int
	samples   int
	failures  int
	openedAt  time.Time
	changedAt time.Time
	probing   bool // a half-open trial is in flight

	trips         int64
	shortCircuits int64
}

// NewBreaker builds a standalone breaker (breakers inside a Set are
// created by Set.Get).
func NewBreaker(opts BreakerOptions) *Breaker {
	return newBreaker(opts, nil)
}

func newBreaker(opts BreakerOptions, onChange func(from, to State)) *Breaker {
	o := opts.withDefaults()
	return &Breaker{
		opts:      o,
		onChange:  onChange,
		outcomes:  make([]bool, 0, o.Window),
		changedAt: o.Clock(),
	}
}

// Allow reports whether a call to the node may proceed. An open breaker
// whose cooldown has elapsed transitions to half-open and admits the
// caller as its single trial.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.opts.Clock().Sub(b.openedAt) >= b.opts.Cooldown {
			b.transition(HalfOpen)
			b.probing = true
			return true
		}
		b.shortCircuits++
		return false
	default: // HalfOpen
		if b.probing {
			b.shortCircuits++
			return false
		}
		b.probing = true
		return true
	}
}

// Record reports the outcome of an admitted call. A half-open trial's
// outcome decides the next state; in the closed state the outcome joins
// the window and may trip the breaker.
func (b *Breaker) Record(ok bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen {
		b.probing = false
		if ok {
			b.reset()
			b.transition(Closed)
		} else {
			b.openedAt = b.opts.Clock()
			b.transition(Open)
		}
		return
	}
	if b.state == Open {
		// A straggler from before the trip; the window restarted.
		return
	}
	b.push(ok)
	if b.samples >= b.opts.MinSamples &&
		float64(b.failures) >= b.opts.FailureThreshold*float64(b.samples) {
		b.trips++
		b.openedAt = b.opts.Clock()
		b.reset()
		b.transition(Open)
	}
}

// RecordNeutral releases an admitted call's slot without a health
// verdict. A shed (429) response is the canonical case: the node is
// alive but overloaded — neither evidence for closing nor for tripping.
func (b *Breaker) RecordNeutral() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen {
		b.probing = false
	}
}

// State returns the current state (an open breaker past its cooldown
// still reports Open until a caller's Allow starts the trial).
func (b *Breaker) State() State {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// push adds one outcome to the ring window.
func (b *Breaker) push(ok bool) {
	if len(b.outcomes) < cap(b.outcomes) {
		b.outcomes = append(b.outcomes, ok)
	} else {
		if !b.outcomes[b.next] {
			b.failures--
		}
		b.outcomes[b.next] = ok
		b.next = (b.next + 1) % cap(b.outcomes)
	}
	if b.samples < cap(b.outcomes) {
		b.samples++
	}
	if !ok {
		b.failures++
	}
}

// reset clears the outcome window.
func (b *Breaker) reset() {
	b.outcomes = b.outcomes[:0]
	b.next = 0
	b.samples = 0
	b.failures = 0
}

// detach disconnects the breaker from its set's onChange hook and
// returns the state it held at that instant. After detach, a straggler
// Record from a call that outlived the breaker's membership can still
// flip the state but can no longer touch the set's aggregate gauges —
// which is the point: Set.Remove subtracts the returned state from the
// gauges exactly once, and nothing may move them afterwards.
func (b *Breaker) detach() State {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.onChange = nil
	return b.state
}

// forceState moves a freshly minted breaker into st (Set.Seed). The
// outcome window is cleared; a half-open target's first admitted call
// becomes its trial.
func (b *Breaker) forceState(st State) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if st == Open {
		b.openedAt = b.opts.Clock()
	}
	b.probing = false
	b.reset()
	b.transition(st)
}

// transition moves to a new state (mu held).
func (b *Breaker) transition(to State) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	b.changedAt = b.opts.Clock()
	if b.onChange != nil {
		b.onChange(from, to)
	}
}

// BreakerSnapshot is one breaker's observable state, as served at
// /debug/breakers.
type BreakerSnapshot struct {
	// Database names the node (set by Set.Snapshot).
	Database string `json:"database,omitempty"`
	// State is "closed", "half_open", or "open".
	State string `json:"state"`
	// Samples and Failures describe the current outcome window.
	Samples  int `json:"samples"`
	Failures int `json:"failures"`
	// Trips counts closed→open transitions; ShortCircuits counts calls
	// denied without touching the node.
	Trips         int64 `json:"trips"`
	ShortCircuits int64 `json:"short_circuits"`
	// OpenedAt is when the breaker last tripped (zero if never).
	OpenedAt time.Time `json:"opened_at,omitempty"`
	// ChangedAt is the last state transition.
	ChangedAt time.Time `json:"changed_at"`
	// CooldownSeconds is the configured open→half-open delay.
	CooldownSeconds float64 `json:"cooldown_seconds"`
}

// Snapshot captures the breaker's state for debugging.
func (b *Breaker) Snapshot() BreakerSnapshot {
	if b == nil {
		return BreakerSnapshot{State: Closed.String()}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerSnapshot{
		State:           b.state.String(),
		Samples:         b.samples,
		Failures:        b.failures,
		Trips:           b.trips,
		ShortCircuits:   b.shortCircuits,
		OpenedAt:        b.openedAt,
		ChangedAt:       b.changedAt,
		CooldownSeconds: b.opts.Cooldown.Seconds(),
	}
}
