package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestBudgetSpendAndDeposit(t *testing.T) {
	reg := telemetry.NewRegistry()
	b := NewBudget(BudgetOptions{Ratio: 0.5, Burst: 2, Metrics: reg})

	// Starts at the burst balance.
	if got := b.Tokens(); got != 2 {
		t.Fatalf("initial tokens = %v, want 2", got)
	}
	if !b.TrySpend() || !b.TrySpend() {
		t.Fatal("burst tokens refused")
	}
	if b.TrySpend() {
		t.Fatal("empty budget granted a token")
	}
	if got := reg.Snapshot().Counters["retry_budget_exhausted_total"]; got != 1 {
		t.Fatalf("retry_budget_exhausted_total = %d, want 1", got)
	}

	// One success deposits Ratio — not yet a whole token.
	b.RecordSuccess()
	if b.TrySpend() {
		t.Fatal("half a token granted a spend")
	}
	b.RecordSuccess()
	if !b.TrySpend() {
		t.Fatal("two successes at ratio 0.5 should fund one retry")
	}

	// Deposits cap at Burst.
	for i := 0; i < 100; i++ {
		b.RecordSuccess()
	}
	if got := b.Tokens(); got != 2 {
		t.Fatalf("tokens after heavy deposits = %v, want burst cap 2", got)
	}
	if got := reg.Snapshot().Gauges["retry_budget_tokens"]; got != 2 {
		t.Fatalf("retry_budget_tokens gauge = %v, want 2", got)
	}
}

func TestBudgetNilAdmitsEverything(t *testing.T) {
	var b *Budget
	if !b.TrySpend() {
		t.Fatal("nil budget refused a spend")
	}
	b.RecordSuccess() // must not panic
}

func TestBudgetConcurrentAccounting(t *testing.T) {
	b := NewBudget(BudgetOptions{Ratio: 1, Burst: 1000})
	var granted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				if b.TrySpend() {
					granted.Add(1)
				}
				b.RecordSuccess()
			}
		}()
	}
	wg.Wait()
	// 4000 spends against 1000 burst + 4000 deposits (ratio 1, capped):
	// every spend after the first should be funded, so grants are within
	// [spends - slack, spends]. The precise bound: grants ≤ burst +
	// deposits = 5000 (trivially true) and tokens never negative.
	if got := b.Tokens(); got < 0 {
		t.Fatalf("token balance went negative: %v", got)
	}
	if granted.Load() == 0 {
		t.Fatal("no spends granted under concurrency")
	}
}

func TestHedgedWithBudgetSuppressesHedge(t *testing.T) {
	b := NewBudget(BudgetOptions{Ratio: 0.2, Burst: 1})
	if !b.TrySpend() {
		t.Fatal("draining spend refused")
	}

	var attempts atomic.Int64
	winner, hedged, err := HedgedWithBudget(context.Background(), time.Millisecond, b,
		func(ctx context.Context, attempt int) error {
			attempts.Add(1)
			time.Sleep(20 * time.Millisecond) // slow enough for the timer to fire
			return nil
		})
	if err != nil || winner != 0 || hedged {
		t.Fatalf("winner=%d hedged=%v err=%v; want primary, no hedge", winner, hedged, err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (hedge suppressed)", got)
	}

	// With a funded budget the same call hedges.
	for i := 0; i < 5; i++ {
		b.RecordSuccess()
	}
	attempts.Store(0)
	release := make(chan struct{})
	_, hedged, err = HedgedWithBudget(context.Background(), time.Millisecond, b,
		func(ctx context.Context, attempt int) error {
			attempts.Add(1)
			if attempt == 0 {
				select {
				case <-release:
				case <-ctx.Done():
				}
				return errors.New("primary lost")
			}
			return nil
		})
	close(release)
	if err != nil || !hedged {
		t.Fatalf("hedged=%v err=%v; want funded hedge to run and win", hedged, err)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("attempts = %d, want 2", got)
	}
}

func TestSetSeedAndRemoveGaugeAccounting(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewSet(BreakerOptions{}, reg)

	gauges := func() (closed, half, open float64) {
		snap := reg.Snapshot()
		return snap.Gauges["breakers_closed"], snap.Gauges["breakers_half_open"], snap.Gauges["breakers_open"]
	}

	// Seed a new name half-open; seed an existing name must not clobber.
	hb := s.Seed("new-replica", HalfOpen)
	if hb.State() != HalfOpen {
		t.Fatalf("seeded state = %v, want half-open", hb.State())
	}
	if c, h, o := gauges(); c != 0 || h != 1 || o != 0 {
		t.Fatalf("gauges after seed = %v/%v/%v, want 0/1/0", c, h, o)
	}
	cb := s.Get("survivor")
	s.Seed("survivor", Open)
	if cb.State() != Closed {
		t.Fatal("Seed clobbered an existing breaker's state")
	}
	if c, h, o := gauges(); c != 1 || h != 1 || o != 0 {
		t.Fatalf("gauges after survivor seed = %v/%v/%v, want 1/1/0", c, h, o)
	}

	// The half-open seed's first admitted call is its trial.
	if !hb.Allow() {
		t.Fatal("seeded half-open breaker refused its trial")
	}
	if hb.Allow() {
		t.Fatal("second concurrent call admitted during the trial")
	}
	hb.Record(true)
	if hb.State() != Closed {
		t.Fatalf("state after successful trial = %v, want closed", hb.State())
	}

	// Remove subtracts the breaker's state exactly once, and a straggler
	// Record afterwards cannot move the gauges.
	removed := s.Get("doomed")
	s.Remove("doomed")
	if c, h, o := gauges(); c != 2 || h != 0 || o != 0 {
		t.Fatalf("gauges after remove = %v/%v/%v, want 2/0/0", c, h, o)
	}
	for i := 0; i < 10; i++ {
		removed.Record(false) // would trip a live breaker
	}
	if c, h, o := gauges(); c != 2 || h != 0 || o != 0 {
		t.Fatalf("straggler records moved gauges: %v/%v/%v", c, h, o)
	}
	s.Remove("doomed") // idempotent
	s.Remove("never-existed")
	if c, h, o := gauges(); c != 2 || h != 0 || o != 0 {
		t.Fatalf("no-op removes moved gauges: %v/%v/%v", c, h, o)
	}
}

// TestProberRetargetHalfOpenRace drives the swap scenario at the
// resilience layer: a prober and live "traffic" race over a breaker
// that is seeded half-open by a topology swap, while SetTargets
// replaces the probe list concurrently. The half-open contract — at
// most one trial in flight, every admitted call Recorded — must hold
// under -race, and no probe may be sent to a target twice concurrently.
func TestProberRetargetHalfOpenRace(t *testing.T) {
	s := NewSet(BreakerOptions{Cooldown: time.Millisecond}, telemetry.NewRegistry())

	var inflight atomic.Int64 // concurrent pings to the half-open target
	var maxInflight atomic.Int64
	ping := func(ctx context.Context) error {
		cur := inflight.Add(1)
		for {
			prev := maxInflight.Load()
			if cur <= prev || maxInflight.CompareAndSwap(prev, cur) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		inflight.Add(-1)
		return nil
	}

	p := NewProber(s, nil, ProberOptions{Interval: time.Millisecond, Timeout: time.Second})
	p.Start()
	defer p.Stop()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Swapper: re-seed and retarget continuously.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.Seed("replica-new", HalfOpen)
			p.SetTargets([]ProbeTarget{{Name: "replica-new", Ping: ping}})
			if i%3 == 0 {
				s.Remove("replica-old")
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	// Traffic: Allow/Record against the same breaker names.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				b := s.Get("replica-new")
				if b.Allow() {
					b.Record(i%4 != 0)
				}
				s.Get("replica-old").Allow()
			}
		}(g)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	p.Stop()

	// The breaker Allow gate must have serialized probe trials whenever
	// the breaker was non-closed; concurrent probes can only overlap via
	// distinct sweeps racing traffic-closed windows, which the gate also
	// forbids for the probe path itself.
	if got := maxInflight.Load(); got > 1 {
		t.Fatalf("max concurrent probes to one target = %d, want ≤ 1", got)
	}
}
