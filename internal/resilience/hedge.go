package resilience

import (
	"context"
	"time"
)

// Hedged runs fn as the primary attempt (attempt 0) and, if it has not
// returned within after, launches exactly one hedge (attempt 1) of the
// same work. The first attempt to *succeed* wins and the loser's
// context is cancelled; a failed attempt does not win while the other
// is still running (errors are what the wire client's retries are for —
// the hedge exists to cut tail latency, so it only pays off against
// slowness).
//
// after <= 0 disables hedging: fn runs once, inline.
//
// fn observes which attempt it is via the attempt argument and must
// write its results into per-attempt slots: the losing attempt may
// still be running when Hedged returns, so the caller must only read
// the winner's slot (or no slot at all when err != nil).
//
// Returns the winning attempt index, whether a hedge was launched, and
// the winner's error (when both attempts fail, the primary's error —
// the representative one; the hedge saw the same node).
func Hedged(ctx context.Context, after time.Duration, fn func(ctx context.Context, attempt int) error) (winner int, hedged bool, err error) {
	return HedgedWithBudget(ctx, after, nil, fn)
}

// HedgedWithBudget is Hedged gated by a retry budget: when the hedge
// timer fires, the hedge launches only if budget.TrySpend() grants a
// token. A refused hedge is not retried — the primary simply runs to
// completion, which is exactly the desired degradation under partial
// outage (hedges are a tail-latency optimization, not a correctness
// mechanism, so they are the first thing the budget sheds). A nil
// budget admits every hedge.
func HedgedWithBudget(ctx context.Context, after time.Duration, budget *Budget, fn func(ctx context.Context, attempt int) error) (winner int, hedged bool, err error) {
	if after <= 0 {
		return 0, false, fn(ctx, 0)
	}
	type outcome struct {
		attempt int
		err     error
	}
	results := make(chan outcome, 2)
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()

	go func() { results <- outcome{0, fn(pctx, 0)} }()
	timer := time.NewTimer(after)
	defer timer.Stop()

	pending := 1
	var primaryErr, hedgeErr error
	for {
		select {
		case r := <-results:
			pending--
			if r.err == nil {
				// Cancel the slower attempt; its late result is ignored.
				if r.attempt == 0 {
					hcancel()
				} else {
					pcancel()
				}
				return r.attempt, hedged, nil
			}
			if r.attempt == 0 {
				primaryErr = r.err
			} else {
				hedgeErr = r.err
			}
			if pending == 0 {
				if primaryErr != nil {
					return 0, hedged, primaryErr
				}
				return 1, hedged, hedgeErr
			}
			// One attempt failed; keep waiting for the other.
		case <-timer.C:
			if !hedged && budget.TrySpend() {
				hedged = true
				pending++
				go func() { results <- outcome{1, fn(hctx, 1)} }()
			}
		}
	}
}
