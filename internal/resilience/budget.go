package resilience

import (
	"sync"

	"repro/internal/telemetry"
)

// BudgetOptions tunes a retry/hedge budget. The zero value selects the
// defaults.
type BudgetOptions struct {
	// Ratio is how many extra-attempt tokens each recorded success
	// deposits (default 0.2: retries plus hedges may not exceed 20% of
	// recent successful volume).
	Ratio float64
	// Burst caps the token balance and is the starting balance, so a
	// cold process can absorb a small fault burst before any successes
	// have funded the bucket (default 10).
	Burst float64
	// Metrics receives retry_budget_exhausted_total and the
	// retry_budget_tokens gauge (may be nil).
	Metrics *telemetry.Registry
}

// Budget is a token bucket that bounds retry and hedge amplification
// across a whole process: every successful call deposits Ratio tokens,
// every retry or hedge spends one, and when the bucket is empty the
// extra attempt simply does not happen. During a partial outage this is
// what turns "every query retries against the dying node" into "a
// bounded trickle probes it while first attempts keep flowing" — the
// alternative is retry amplification, where the retries themselves
// become the overload.
//
// One Budget is shared by every path that launches speculative work
// (wire-client same-replica retries, hedge launches, router shard-call
// retries); first attempts and replica failover are never charged —
// failover is the availability mechanism, not amplification.
//
// All methods are safe for concurrent use and on a nil receiver (a nil
// budget admits everything), so budgeting is opt-in without call-site
// conditionals.
type Budget struct {
	ratio float64
	burst float64

	mu     sync.Mutex
	tokens float64

	exhausted *telemetry.Counter
	gauge     *telemetry.Gauge
}

// NewBudget builds a budget starting at its full burst balance.
func NewBudget(opts BudgetOptions) *Budget {
	if opts.Ratio <= 0 {
		opts.Ratio = 0.2
	}
	if opts.Burst <= 0 {
		opts.Burst = 10
	}
	opts.Metrics.Describe("retry_budget_exhausted_total",
		"Retries or hedges suppressed because the retry budget was empty.")
	opts.Metrics.Describe("retry_budget_tokens",
		"Current retry-budget token balance (successes deposit, retries/hedges spend).")
	b := &Budget{
		ratio:     opts.Ratio,
		burst:     opts.Burst,
		tokens:    opts.Burst,
		exhausted: opts.Metrics.Counter("retry_budget_exhausted_total"),
		gauge:     opts.Metrics.Gauge("retry_budget_tokens"),
	}
	b.gauge.Set(b.tokens)
	return b
}

// TrySpend takes one token if available and reports whether the caller
// may launch its retry or hedge. A refusal is counted in
// retry_budget_exhausted_total.
func (b *Budget) TrySpend() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	ok := b.tokens >= 1
	if ok {
		b.tokens--
	}
	tokens := b.tokens
	b.mu.Unlock()
	if !ok {
		b.exhausted.Inc()
		return false
	}
	b.gauge.Set(tokens)
	return true
}

// RecordSuccess deposits Ratio tokens (capped at Burst). Call it for
// every successful call, not just budgeted ones — the budget is a
// fraction of total successful volume.
func (b *Budget) RecordSuccess() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	tokens := b.tokens
	b.mu.Unlock()
	b.gauge.Set(tokens)
}

// Tokens returns the current balance (tests, debug surfaces).
func (b *Budget) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
