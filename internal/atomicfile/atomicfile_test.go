package atomicfile

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteCreatesAndReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	if err := Write(path, 0o644, func(f *os.File) error {
		_, err := f.WriteString("v1")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "v1" {
		t.Fatalf("content = %q, want v1", b)
	}
	if err := Write(path, 0o644, func(f *os.File) error {
		_, err := f.WriteString("v2")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "v2" {
		t.Fatalf("content = %q, want v2", b)
	}
}

func TestFailedWriteLeavesOriginalIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := os.WriteFile(path, []byte("original"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	if err := Write(path, 0o644, func(f *os.File) error {
		f.WriteString("partial garbage")
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the fill error", err)
	}
	if b, _ := os.ReadFile(path); string(b) != "original" {
		t.Fatalf("content = %q; a failed write must leave the original", b)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("dir holds %d entries, want just the original", len(entries))
	}
}
