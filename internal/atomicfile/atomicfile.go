// Package atomicfile writes files crash-safely: content goes to a
// temporary file in the destination's directory, is fsynced, and is
// renamed over the destination only once fully written. A crash or
// failed write leaves the previous file intact — there is never a
// moment where the destination holds a truncated or partial file.
package atomicfile

import (
	"fmt"
	"os"
	"path/filepath"
)

// Write atomically replaces path with the bytes fill writes. The
// temporary file lives in path's directory (rename must not cross
// filesystems) and is removed on any failure.
func Write(path string, perm os.FileMode, fill func(*os.File) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := fill(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("atomicfile: sync %s: %w", tmp.Name(), err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fmt.Errorf("atomicfile: chmod %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("atomicfile: close %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		tmp = nil
		return fmt.Errorf("atomicfile: %w", err)
	}
	tmp = nil
	return nil
}
