package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !approx(m, 5, 1e-12) {
		t.Errorf("Mean = %v", m)
	}
	if v := Variance(xs); !approx(v, 4, 1e-12) {
		t.Errorf("Variance = %v", v)
	}
	if s := StdDev(xs); !approx(s, 2, 1e-12) {
		t.Errorf("StdDev = %v", s)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("empty/singleton cases wrong")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 3
			w.Add(xs[i])
		}
		return approx(w.Mean(), Mean(xs), 1e-9) &&
			approx(w.Variance(), Variance(xs), 1e-9) &&
			w.N() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLinearRegressionExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	slope, intercept, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(slope, 2, 1e-12) || !approx(intercept, 1, 1e-12) {
		t.Errorf("fit = %v, %v", slope, intercept)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, _, err := LinearRegression([]float64{1}, []float64{1}); err == nil {
		t.Error("expected error for single point")
	}
	if _, _, err := LinearRegression([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("expected error for degenerate x")
	}
	if _, _, err := LinearRegression([]float64{1, 2}, []float64{1}); err != ErrMismatchedLengths {
		t.Error("expected length mismatch error")
	}
}

func TestLinearRegressionRecoversNoisyLine(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 500
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
		y[i] = -1.5*x[i] + 40 + rng.NormFloat64()*0.5
	}
	slope, intercept, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(slope, -1.5, 0.01) || !approx(intercept, 40, 1.0) {
		t.Errorf("fit = %v, %v", slope, intercept)
	}
}

func TestRanks(t *testing.T) {
	// Highest value gets rank 1; ties share average rank.
	r := Ranks([]float64{10, 20, 20, 5})
	want := []float64{3, 1.5, 1.5, 4}
	for i := range r {
		if !approx(r[i], want[i], 1e-12) {
			t.Fatalf("Ranks = %v, want %v", r, want)
		}
	}
}

func TestSpearmanPerfectAndReverse(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 20, 30, 40, 50}
	if s, _ := Spearman(x, y); !approx(s, 1, 1e-12) {
		t.Errorf("identical order SRCC = %v", s)
	}
	rev := []float64{50, 40, 30, 20, 10}
	if s, _ := Spearman(x, rev); !approx(s, -1, 1e-12) {
		t.Errorf("reverse order SRCC = %v", s)
	}
}

func TestSpearmanMonotoneInvariance(t *testing.T) {
	// SRCC depends only on ranks: applying a monotone transform to one
	// side must not change it.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		y2 := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()
			y[i] = rng.Float64()
			y2[i] = math.Exp(3 * y[i]) // strictly monotone transform
		}
		a, _ := Spearman(x, y)
		b, _ := Spearman(x, y2)
		return approx(a, b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSpearmanUncorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 2000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
		y[i] = rng.Float64()
	}
	s, _ := Spearman(x, y)
	if math.Abs(s) > 0.05 {
		t.Errorf("uncorrelated SRCC = %v, want near 0", s)
	}
}

func TestKLDivergence(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.5, 0.5}
	if kl, _ := KLDivergence(p, q); !approx(kl, 0, 1e-12) {
		t.Errorf("KL(p,p) = %v", kl)
	}
	q2 := []float64{0.9, 0.1}
	kl, _ := KLDivergence(p, q2)
	want := 0.5*math.Log(0.5/0.9) + 0.5*math.Log(0.5/0.1)
	if !approx(kl, want, 1e-12) {
		t.Errorf("KL = %v, want %v", kl, want)
	}
	// Zero q with nonzero p -> infinite.
	if kl, _ := KLDivergence([]float64{1}, []float64{0}); !math.IsInf(kl, 1) {
		t.Errorf("KL with q=0 = %v", kl)
	}
	// Zero p entries contribute nothing.
	if kl, _ := KLDivergence([]float64{0, 1}, []float64{0.5, 0.5}); !approx(kl, math.Log(2), 1e-12) {
		t.Errorf("KL with p=0 entry = %v", kl)
	}
}

func TestKLNonNegativeOnRandomDistributions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		p := make([]float64, n)
		q := make([]float64, n)
		for i := range p {
			p[i] = rng.Float64() + 1e-9
			q[i] = rng.Float64() + 1e-9
		}
		p = Normalize(p)
		q = Normalize(q)
		kl, _ := KLDivergence(p, q)
		return kl >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{1, 3})
	if !approx(out[0], 0.25, 1e-12) || !approx(out[1], 0.75, 1e-12) {
		t.Errorf("Normalize = %v", out)
	}
	uniform := Normalize([]float64{0, 0, 0, 0})
	for _, v := range uniform {
		if !approx(v, 0.25, 1e-12) {
			t.Errorf("Normalize zeros = %v", uniform)
		}
	}
}

func TestPairedTTestKnownValue(t *testing.T) {
	// Classic textbook example: differences with a clear effect.
	a := []float64{30, 31, 34, 40, 36, 35, 34, 30, 28, 29}
	b := []float64{32, 31, 38, 42, 37, 36, 38, 32, 29, 30}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.DF != 9 {
		t.Errorf("DF = %d", res.DF)
	}
	if res.T >= 0 {
		t.Errorf("T = %v, want negative (b > a)", res.T)
	}
	if res.P > 0.01 {
		t.Errorf("P = %v, want significant", res.P)
	}
}

func TestPairedTTestNoDifference(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	res, err := PairedTTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.T != 0 || res.P != 1 {
		t.Errorf("identical samples: T=%v P=%v", res.T, res.P)
	}
}

func TestPairedTTestPValueRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		res, err := PairedTTest(a, b)
		if err != nil {
			return false
		}
		return res.P >= 0 && res.P <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStudentPMatchesNormalForLargeDF(t *testing.T) {
	// For large df, t distribution approaches the normal: two-sided p
	// for t=1.96 should approach ~0.05.
	p := studentTwoSidedP(1.96, 10000)
	if !approx(p, 0.05, 0.002) {
		t.Errorf("p(1.96, 10000) = %v, want ~0.05", p)
	}
	p = studentTwoSidedP(2.576, 10000)
	if !approx(p, 0.01, 0.001) {
		t.Errorf("p(2.576, 10000) = %v, want ~0.01", p)
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if regIncBeta(2, 3, 0) != 0 || regIncBeta(2, 3, 1) != 1 {
		t.Error("boundary values wrong")
	}
	// I_x(1,1) = x (uniform distribution CDF).
	for _, x := range []float64{0.1, 0.3, 0.7, 0.9} {
		if got := regIncBeta(1, 1, x); !approx(got, x, 1e-10) {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
}

func BenchmarkSpearman(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 10000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
		y[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Spearman(x, y)
	}
}

func BenchmarkWelford(b *testing.B) {
	var w Welford
	for i := 0; i < b.N; i++ {
		w.Add(float64(i % 97))
	}
}
