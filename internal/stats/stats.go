// Package stats implements the statistical machinery the paper relies
// on: descriptive statistics, simple linear regression (used by the
// Appendix A frequency-estimation fits), the Spearman rank correlation
// coefficient and KL divergence (content-summary quality metrics,
// Section 6.1), and the paired t-test used for the significance claims.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than
// two values.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Welford accumulates mean and variance incrementally in one pass; it is
// used by the adaptive selection algorithm (Section 4), which examines
// score samples until mean and variance converge.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations so far.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// ErrMismatchedLengths is returned when paired inputs differ in length.
var ErrMismatchedLengths = errors.New("stats: mismatched input lengths")

// LinearRegression fits y = slope*x + intercept by ordinary least
// squares. It requires at least two points with non-identical x values.
func LinearRegression(x, y []float64) (slope, intercept float64, err error) {
	if len(x) != len(y) {
		return 0, 0, ErrMismatchedLengths
	}
	if len(x) < 2 {
		return 0, 0, errors.New("stats: need at least two points")
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return 0, 0, errors.New("stats: degenerate x values")
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	return slope, intercept, nil
}

// Spearman computes the Spearman rank correlation coefficient between
// two paired samples, handling ties by average ranks. It returns 0 for
// samples shorter than 2 or with zero variance in either ranking.
func Spearman(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrMismatchedLengths
	}
	if len(x) < 2 {
		return 0, nil
	}
	rx := Ranks(x)
	ry := Ranks(y)
	return pearson(rx, ry), nil
}

// Ranks assigns 1-based average ranks to the values (highest value gets
// rank 1), with ties receiving the mean of their covered ranks. Ranking
// by decreasing value matches the word-ranking use in Section 6.1.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

func pearson(x, y []float64) float64 {
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// KLDivergence computes sum p_i * log(p_i/q_i) over the paired
// distributions, in nats. Entries with p_i = 0 contribute zero; entries
// with q_i = 0 and p_i > 0 make the divergence infinite.
func KLDivergence(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, ErrMismatchedLengths
	}
	var kl float64
	for i := range p {
		if p[i] <= 0 {
			continue
		}
		if q[i] <= 0 {
			return math.Inf(1), nil
		}
		kl += p[i] * math.Log(p[i]/q[i])
	}
	return kl, nil
}

// Normalize scales xs to sum to 1 and returns the result; an all-zero
// input yields a uniform distribution.
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	var s float64
	for _, x := range xs {
		s += x
	}
	if s == 0 {
		for i := range out {
			out[i] = 1 / float64(len(xs))
		}
		return out
	}
	for i, x := range xs {
		out[i] = x / s
	}
	return out
}

// TTestResult reports a paired t-test.
type TTestResult struct {
	T  float64 // t statistic
	DF int     // degrees of freedom
	P  float64 // two-sided p-value
}

// PairedTTest performs a two-sided paired t-test on the differences
// between the paired samples a and b. It implements the textbook
// statistic with a p-value computed from the regularized incomplete
// beta function. The paper uses this test to establish that shrinkage's
// improvements are significant (Sections 6.1-6.2).
func PairedTTest(a, b []float64) (TTestResult, error) {
	if len(a) != len(b) {
		return TTestResult{}, ErrMismatchedLengths
	}
	n := len(a)
	if n < 2 {
		return TTestResult{}, errors.New("stats: need at least two pairs")
	}
	diffs := make([]float64, n)
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	m := Mean(diffs)
	var ss float64
	for _, d := range diffs {
		dd := d - m
		ss += dd * dd
	}
	sd := math.Sqrt(ss / float64(n-1))
	if sd == 0 {
		if m == 0 {
			return TTestResult{T: 0, DF: n - 1, P: 1}, nil
		}
		return TTestResult{T: math.Inf(sign(m)), DF: n - 1, P: 0}, nil
	}
	t := m / (sd / math.Sqrt(float64(n)))
	df := float64(n - 1)
	p := studentTwoSidedP(t, df)
	return TTestResult{T: t, DF: n - 1, P: p}, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// studentTwoSidedP returns the two-sided p-value for a t statistic with
// df degrees of freedom, via the incomplete beta identity
// P(|T| > t) = I_{df/(df+t^2)}(df/2, 1/2).
func studentTwoSidedP(t, df float64) float64 {
	x := df / (df + t*t)
	return regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a,b)
// using the continued-fraction expansion (Numerical Recipes betacf).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a + math.Log(1-x)*b + lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betacf evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
