// Package shardmap partitions the summary universe across a fleet of
// metasearcher shards. The paper assumes one process holds every
// database summary; past a few hundred thousand databases (or a few
// thousand QPS) one box cannot, so the cluster tier splits the
// federation: a deterministic consistent-hash ring maps every database
// name to N metasearcher shards, and a versioned JSON topology file
// gives the router and every shard an identical view of the mapping —
// no coordination service, no gossip, just the same pure function of
// the same file.
//
// The ring is the bounded-load variant (Mirrokni et al., "Consistent
// Hashing with Bounded Loads"): each shard owns many virtual nodes on a
// 64-bit ring, keys walk clockwise from their hash, and a shard that
// has already reached its load cap (LoadFactor × fair share) is skipped
// — so a skewed key space cannot pile onto one shard, while a shard
// join or leave still moves only O(K/N) keys. Every hash is FNV-64a:
// deterministic across processes, architectures, and restarts, which is
// the property the whole design rests on (hash/maphash is seeded per
// process and would silently split the cluster's view).
//
// Two replication notions coexist and must not be confused:
//
//   - Topology.Replication (R) is how many *shards* own each database.
//     With R ≥ 2 a shard crash loses no coverage: the router's merge
//     deduplicates the overlap.
//   - Database.Replicas are the addresses of the dbnode *processes*
//     serving that database's corpus. Each owning shard dials all of
//     them and prefers "its own" (rotated by owner rank), so replica
//     load spreads and a dead process fails over without losing the
//     database.
package shardmap

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"sort"
	"strconv"

	"repro/internal/atomicfile"
)

// TopologyVersion guards the topology file format: breaking changes
// bump it, additive changes extend the JSON objects.
const TopologyVersion = 1

// Defaults applied by Validate when a field is zero.
const (
	// DefaultVirtualNodes is the virtual nodes per shard. More vnodes
	// smooth the partition (each shard's arc becomes many small arcs)
	// at O(N·vnodes·log) ring-build cost; 128 keeps natural placement
	// balanced enough that the load caps rarely bind, which in turn
	// keeps join/leave movement near the ideal K/N (a cap that binds
	// cascades extra keys onto other shards when membership changes).
	DefaultVirtualNodes = 128
	// DefaultLoadFactor is the bounded-load slack c: no shard may own
	// more than ceil(c · K·R / N) databases.
	DefaultLoadFactor = 1.25
)

// Shard is one metasearcher shard process.
type Shard struct {
	// ID names the shard; it is what the ring hashes, so renaming a
	// shard moves its keys. IDs must be unique.
	ID string `json:"id"`
	// Addr is the shard's gateway base ("host:port" or a full http://
	// URL) the router fans out to.
	Addr string `json:"addr"`
}

// Database is one federated text database and the dbnode processes
// serving it.
type Database struct {
	// Name is the database's unique name — the ring key.
	Name string `json:"name"`
	// Category, when non-empty, is the known classification passed to
	// AddDatabase (the web-directory case of the paper).
	Category string `json:"category,omitempty"`
	// Replicas are the addresses of the dbnode processes serving this
	// database's corpus. All replicas must serve identical content; an
	// owning shard dials every one and fails over between them.
	Replicas []string `json:"replicas"`
}

// Topology is the cluster's shared world view, serialized as JSON. The
// router and every shard must load the identical file: assignment is a
// pure function of the topology, so agreement on the file is agreement
// on the partition.
type Topology struct {
	Version int `json:"version"`
	// VirtualNodes and LoadFactor tune the ring (zero selects the
	// defaults). They are part of the file on purpose: two processes
	// disagreeing on either would disagree on the partition.
	VirtualNodes int     `json:"virtual_nodes,omitempty"`
	LoadFactor   float64 `json:"load_factor,omitempty"`
	// Replication is how many shards own each database (default 1,
	// clamped to the shard count).
	Replication int        `json:"replication,omitempty"`
	Shards      []Shard    `json:"shards"`
	Databases   []Database `json:"databases"`
}

// Assignment is one database as seen by one owning shard.
type Assignment struct {
	// Database and Category mirror the topology entry.
	Database string
	Category string
	// Replicas are all dbnode addresses serving the database.
	Replicas []string
	// Preferred is the index into Replicas this shard should try
	// first. Owner ranks rotate the preference, so when R shards own a
	// database their steady-state traffic spreads over its replicas
	// instead of piling onto the first address.
	Preferred int
}

// Validate checks the topology and fills defaulted fields in place.
func (t *Topology) Validate() error {
	if t.Version != TopologyVersion {
		return fmt.Errorf("shardmap: unsupported topology version %d (want %d)", t.Version, TopologyVersion)
	}
	if t.VirtualNodes == 0 {
		t.VirtualNodes = DefaultVirtualNodes
	}
	if t.VirtualNodes < 1 {
		return fmt.Errorf("shardmap: virtual_nodes must be positive, got %d", t.VirtualNodes)
	}
	if t.LoadFactor == 0 {
		t.LoadFactor = DefaultLoadFactor
	}
	if t.LoadFactor < 1 {
		return fmt.Errorf("shardmap: load_factor must be >= 1, got %g", t.LoadFactor)
	}
	if len(t.Shards) == 0 {
		return errors.New("shardmap: topology has no shards")
	}
	if t.Replication == 0 {
		t.Replication = 1
	}
	if t.Replication < 1 {
		return fmt.Errorf("shardmap: replication must be positive, got %d", t.Replication)
	}
	if t.Replication > len(t.Shards) {
		return fmt.Errorf("shardmap: replication %d exceeds shard count %d", t.Replication, len(t.Shards))
	}
	seen := make(map[string]bool, len(t.Shards))
	for i, s := range t.Shards {
		if s.ID == "" {
			return fmt.Errorf("shardmap: shard %d has no id", i)
		}
		if seen[s.ID] {
			return fmt.Errorf("shardmap: duplicate shard id %q", s.ID)
		}
		seen[s.ID] = true
		if s.Addr == "" {
			return fmt.Errorf("shardmap: shard %q has no addr", s.ID)
		}
	}
	if len(t.Databases) == 0 {
		return errors.New("shardmap: topology has no databases")
	}
	names := make(map[string]bool, len(t.Databases))
	for i, d := range t.Databases {
		if d.Name == "" {
			return fmt.Errorf("shardmap: database %d has no name", i)
		}
		if names[d.Name] {
			return fmt.Errorf("shardmap: duplicate database %q", d.Name)
		}
		names[d.Name] = true
		if len(d.Replicas) == 0 {
			return fmt.Errorf("shardmap: database %q has no replicas", d.Name)
		}
		for _, addr := range d.Replicas {
			if addr == "" {
				return fmt.Errorf("shardmap: database %q has an empty replica address", d.Name)
			}
		}
	}
	return nil
}

// Load reads and validates a topology.
func Load(r io.Reader) (*Topology, error) {
	var t Topology
	if err := json.NewDecoder(bufio.NewReader(r)).Decode(&t); err != nil {
		return nil, fmt.Errorf("shardmap: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// LoadFile reads and validates a topology file.
func LoadFile(path string) (*Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("shardmap: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// Save writes the topology as indented JSON.
func (t *Topology) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("shardmap: save: %w", err)
	}
	return nil
}

// SaveFile writes the topology crash-safely (temp file + rename), like
// every other state file in this repo: a torn topology would split the
// cluster's world view, which is the one thing the design forbids.
func (t *Topology) SaveFile(path string) error {
	return atomicfile.Write(path, 0o644, func(f *os.File) error {
		return t.Save(f)
	})
}

// hashString is FNV-64a — stable across processes, which maphash is
// not. Assignment determinism is a correctness property here, not a
// nicety: a router and a shard hashing differently would route queries
// to shards that skip them as out of scope.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// ring is the sorted virtual-node circle.
type ring struct {
	hashes []uint64 // sorted
	owner  []int    // owner[i] is the shard index owning hashes[i]
}

// buildRing places VirtualNodes points per shard. Shards are indexed in
// sorted-ID order so the ring is independent of the file's shard order.
func buildRing(shardIDs []string, vnodes int) *ring {
	type pt struct {
		h     uint64
		shard int
	}
	pts := make([]pt, 0, len(shardIDs)*vnodes)
	for si, id := range shardIDs {
		for v := 0; v < vnodes; v++ {
			pts = append(pts, pt{hashString(id + "#" + strconv.Itoa(v)), si})
		}
	}
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].h != pts[b].h {
			return pts[a].h < pts[b].h
		}
		// A 64-bit collision between vnode labels is vanishingly rare
		// but must still order deterministically.
		return pts[a].shard < pts[b].shard
	})
	r := &ring{hashes: make([]uint64, len(pts)), owner: make([]int, len(pts))}
	for i, p := range pts {
		r.hashes[i] = p.h
		r.owner[i] = p.shard
	}
	return r
}

// walk calls fn with the shard index of each virtual node clockwise
// from key's hash (wrapping), until fn returns false or the ring is
// exhausted. The same shard is visited once per virtual node; fn is
// expected to dedupe.
func (r *ring) walk(key string, fn func(shard int) bool) {
	h := hashString(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	for i := 0; i < len(r.hashes); i++ {
		if !fn(r.owner[(start+i)%len(r.hashes)]) {
			return
		}
	}
}

// Owners assigns every database to Replication distinct shards and
// returns name → owning shard IDs, in owner-rank order. The assignment
// is a pure function of the topology: keys are processed in sorted
// order, every hash is FNV-64a, and ties break on sorted positions, so
// any two processes holding the same file compute the same map.
//
// Bounded load: a shard already holding ceil(LoadFactor·K·R/N)
// databases is skipped on the first pass. If the caps leave a key with
// fewer than R distinct owners (only possible near the cap boundary),
// a second pass admits over-cap shards — coverage beats balance.
func (t *Topology) Owners() (map[string][]string, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	shardIDs := make([]string, len(t.Shards))
	for i, s := range t.Shards {
		shardIDs[i] = s.ID
	}
	sort.Strings(shardIDs)

	keys := make([]string, len(t.Databases))
	for i, d := range t.Databases {
		keys[i] = d.Name
	}
	sort.Strings(keys)

	r := buildRing(shardIDs, t.VirtualNodes)
	n := len(shardIDs)
	cap_ := int(math.Ceil(t.LoadFactor * float64(len(keys)*t.Replication) / float64(n)))
	load := make([]int, n)

	owners := make(map[string][]string, len(keys))
	for _, key := range keys {
		chosen := make([]int, 0, t.Replication)
		taken := make([]bool, n)
		r.walk(key, func(shard int) bool {
			if taken[shard] || load[shard] >= cap_ {
				return true
			}
			taken[shard] = true
			chosen = append(chosen, shard)
			return len(chosen) < t.Replication
		})
		if len(chosen) < t.Replication {
			r.walk(key, func(shard int) bool {
				if taken[shard] {
					return true
				}
				taken[shard] = true
				chosen = append(chosen, shard)
				return len(chosen) < t.Replication
			})
		}
		ids := make([]string, len(chosen))
		for j, si := range chosen {
			load[si]++
			ids[j] = shardIDs[si]
		}
		owners[key] = ids
	}
	return owners, nil
}

// ShardAssignments returns the databases the given shard owns, sorted
// by name, each with its replica list and this shard's preferred
// replica index (the owner rank rotated over the replicas).
func (t *Topology) ShardAssignments(shardID string) ([]Assignment, error) {
	found := false
	for _, s := range t.Shards {
		if s.ID == shardID {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("shardmap: topology has no shard %q", shardID)
	}
	owners, err := t.Owners()
	if err != nil {
		return nil, err
	}
	var out []Assignment
	for _, d := range t.Databases {
		for rank, id := range owners[d.Name] {
			if id != shardID {
				continue
			}
			out = append(out, Assignment{
				Database:  d.Name,
				Category:  d.Category,
				Replicas:  append([]string(nil), d.Replicas...),
				Preferred: rank % len(d.Replicas),
			})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Database < out[b].Database })
	return out, nil
}

// ShardAddr returns the gateway address of the given shard.
func (t *Topology) ShardAddr(shardID string) (string, error) {
	for _, s := range t.Shards {
		if s.ID == shardID {
			return s.Addr, nil
		}
	}
	return "", fmt.Errorf("shardmap: topology has no shard %q", shardID)
}
