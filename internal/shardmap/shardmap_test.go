package shardmap

import (
	"bytes"
	"fmt"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// topo builds a valid topology with n shards, k databases, and r
// replicas per database.
func topo(n, k, rep, replicas int) *Topology {
	t := &Topology{Version: TopologyVersion, Replication: rep}
	for i := 0; i < n; i++ {
		t.Shards = append(t.Shards, Shard{
			ID:   fmt.Sprintf("shard-%02d", i),
			Addr: fmt.Sprintf("127.0.0.1:%d", 9000+i),
		})
	}
	for i := 0; i < k; i++ {
		d := Database{Name: fmt.Sprintf("www.db-%03d.example", i)}
		for j := 0; j < replicas; j++ {
			d.Replicas = append(d.Replicas, fmt.Sprintf("127.0.0.1:%d", 10000+i*replicas+j))
		}
		t.Databases = append(t.Databases, d)
	}
	return t
}

// TestOwnersDeterministic pins that assignment is a pure function of
// the topology: same file, same owners — including across a JSON
// round trip (what router and shards actually do) and across shard
// declaration order (only IDs matter, not file position).
func TestOwnersDeterministic(t *testing.T) {
	tp := topo(4, 50, 2, 2)
	a, err := tp.Owners()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	tp2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tp2.Owners()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("owners diverge across a topology file round trip")
	}

	// Reverse the shard declaration order: the partition must not move.
	tp3 := topo(4, 50, 2, 2)
	for i, j := 0, len(tp3.Shards)-1; i < j; i, j = i+1, j-1 {
		tp3.Shards[i], tp3.Shards[j] = tp3.Shards[j], tp3.Shards[i]
	}
	c, err := tp3.Owners()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatal("owners depend on shard declaration order")
	}
}

// TestOwnersGolden pins a concrete assignment so an accidental change
// to the hash function, vnode labeling, or walk order — which would
// silently split a mixed-version cluster's world view — fails loudly.
func TestOwnersGolden(t *testing.T) {
	tp := topo(3, 6, 1, 1)
	owners, err := tp.Owners()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"www.db-000.example": "shard-01",
		"www.db-001.example": "shard-01",
		"www.db-002.example": "shard-01",
		"www.db-003.example": "shard-00",
		"www.db-004.example": "shard-02",
		"www.db-005.example": "shard-00",
	}
	for name, shard := range want {
		if got := strings.Join(owners[name], ","); got != shard {
			t.Errorf("%s assigned to %q, golden says %q", name, got, shard)
		}
	}
}

// TestRemapBound pins the consistent-hashing contract: adding or
// removing one shard moves at most ~K/N keys, not a full reshuffle.
func TestRemapBound(t *testing.T) {
	const K = 200
	before, err := topo(4, K, 1, 1).Owners()
	if err != nil {
		t.Fatal(err)
	}
	grown := topo(5, K, 1, 1)
	after, err := grown.Owners()
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for name, o := range before {
		if !reflect.DeepEqual(o, after[name]) {
			moved++
		}
	}
	// Ideal movement for a 4→5 join is K/5 = 40; the bound the design
	// promises is ≤ K/N = 50 (bounded-load rebalancing may move a few
	// extra keys whose old shard sat at its cap).
	bound := K / 4
	if moved > bound {
		t.Fatalf("shard join moved %d/%d keys, want <= %d", moved, K, bound)
	}
	if moved == 0 {
		t.Fatal("shard join moved no keys; the new shard owns nothing")
	}
	t.Logf("join 4→5 moved %d/%d keys (bound %d, ideal %d)", moved, K, bound, K/5)

	// Leave: shrinking back must restore the original assignment
	// exactly (same pure function of the same topology).
	restored, err := topo(4, K, 1, 1).Owners()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, restored) {
		t.Fatal("shard leave did not restore the original assignment")
	}
}

// TestReplicaPlacementDistinct pins that the R owners of any database
// are R distinct shards: co-locating two "replicas" on one shard would
// turn a shard crash into coverage loss.
func TestReplicaPlacementDistinct(t *testing.T) {
	for _, tc := range []struct{ n, k, rep int }{
		{2, 30, 2}, {3, 50, 2}, {5, 100, 3}, {4, 64, 4},
	} {
		owners, err := topo(tc.n, tc.k, tc.rep, 2).Owners()
		if err != nil {
			t.Fatal(err)
		}
		for name, ids := range owners {
			if len(ids) != tc.rep {
				t.Fatalf("n=%d r=%d: %s has %d owners, want %d", tc.n, tc.rep, name, len(ids), tc.rep)
			}
			seen := map[string]bool{}
			for _, id := range ids {
				if seen[id] {
					t.Fatalf("n=%d r=%d: %s placed twice on %s", tc.n, tc.rep, name, id)
				}
				seen[id] = true
			}
		}
	}
}

// TestBoundedLoad pins the load cap: no shard owns more than
// ceil(LoadFactor · K·R/N) databases, even under the hash skew a plain
// consistent-hash ring would exhibit.
func TestBoundedLoad(t *testing.T) {
	for _, tc := range []struct{ n, k, rep int }{
		{3, 90, 1}, {4, 200, 2}, {7, 300, 1},
	} {
		tp := topo(tc.n, tc.k, tc.rep, 1)
		owners, err := tp.Owners()
		if err != nil {
			t.Fatal(err)
		}
		limit := int(math.Ceil(tp.LoadFactor * float64(tc.k*tc.rep) / float64(tc.n)))
		load := map[string]int{}
		for _, ids := range owners {
			for _, id := range ids {
				load[id]++
			}
		}
		for id, l := range load {
			if l > limit {
				t.Errorf("n=%d k=%d r=%d: %s owns %d databases, cap is %d", tc.n, tc.k, tc.rep, id, l, limit)
			}
		}
	}
}

// TestShardAssignments pins the per-shard view: every database appears
// on exactly its owners, and the preferred replica index rotates with
// owner rank so R owning shards spread over the database's replicas.
func TestShardAssignments(t *testing.T) {
	tp := topo(3, 24, 2, 2)
	owners, err := tp.Owners()
	if err != nil {
		t.Fatal(err)
	}
	covered := map[string]int{}
	prefs := map[string][]int{}
	for _, s := range tp.Shards {
		asgs, err := tp.ShardAssignments(s.ID)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range asgs {
			covered[a.Database]++
			prefs[a.Database] = append(prefs[a.Database], a.Preferred)
			if len(a.Replicas) != 2 {
				t.Fatalf("%s on %s carries %d replicas, want 2", a.Database, s.ID, len(a.Replicas))
			}
			want := false
			for _, id := range owners[a.Database] {
				if id == s.ID {
					want = true
				}
			}
			if !want {
				t.Fatalf("%s assigned to %s, which does not own it", a.Database, s.ID)
			}
		}
	}
	for name, c := range covered {
		if c != 2 {
			t.Fatalf("%s covered by %d shards, want 2", name, c)
		}
		// Two owners, two replicas: preferences must be {0, 1}.
		p := prefs[name]
		if len(p) != 2 || p[0]+p[1] != 1 {
			t.Fatalf("%s preferred replicas %v, want one shard on each replica", name, p)
		}
	}

	if _, err := tp.ShardAssignments("no-such-shard"); err == nil {
		t.Fatal("unknown shard id did not error")
	}
}

// TestTopologyValidate covers the malformed-file rejections.
func TestTopologyValidate(t *testing.T) {
	good := func() *Topology { return topo(2, 4, 2, 2) }
	cases := []struct {
		name  string
		mutil func(*Topology)
	}{
		{"bad version", func(tp *Topology) { tp.Version = 99 }},
		{"no shards", func(tp *Topology) { tp.Shards = nil }},
		{"dup shard", func(tp *Topology) { tp.Shards[1].ID = tp.Shards[0].ID }},
		{"empty shard addr", func(tp *Topology) { tp.Shards[0].Addr = "" }},
		{"no databases", func(tp *Topology) { tp.Databases = nil }},
		{"dup database", func(tp *Topology) { tp.Databases[1].Name = tp.Databases[0].Name }},
		{"no replicas", func(tp *Topology) { tp.Databases[0].Replicas = nil }},
		{"empty replica", func(tp *Topology) { tp.Databases[0].Replicas[0] = "" }},
		{"replication > shards", func(tp *Topology) { tp.Replication = 3 }},
		{"negative load factor", func(tp *Topology) { tp.LoadFactor = 0.5 }},
	}
	for _, tc := range cases {
		tp := good()
		tc.mutil(tp)
		if err := tp.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a malformed topology", tc.name)
		}
	}
	tp := good()
	if err := tp.Validate(); err != nil {
		t.Fatalf("valid topology rejected: %v", err)
	}
	if tp.VirtualNodes != DefaultVirtualNodes || tp.LoadFactor != DefaultLoadFactor {
		t.Fatalf("defaults not applied: vnodes=%d load=%g", tp.VirtualNodes, tp.LoadFactor)
	}
}

// TestTopologyFileRoundTrip covers SaveFile/LoadFile.
func TestTopologyFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "topology.json")
	tp := topo(2, 6, 1, 2)
	if err := tp.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := tp.Owners()
	b, _ := got.Owners()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("owners diverge after a file round trip")
	}
	if _, err := tp.ShardAddr("shard-01"); err != nil {
		t.Fatal(err)
	}
	if _, err := tp.ShardAddr("nope"); err == nil {
		t.Fatal("unknown shard addr lookup did not error")
	}
}
