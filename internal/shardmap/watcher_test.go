package shardmap

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func testTopology() *Topology {
	return &Topology{
		Version: TopologyVersion,
		Shards: []Shard{
			{ID: "shard-0", Addr: "s0:1"},
			{ID: "shard-1", Addr: "s1:1"},
		},
		Databases: []Database{
			{Name: "alpha", Category: "Health", Replicas: []string{"a0:1", "a1:1"}},
			{Name: "beta", Category: "Sports", Replicas: []string{"b0:1"}},
		},
	}
}

// touch bumps the file's mtime past its current value so the
// stat-based change detection cannot miss a same-second rewrite.
func touch(t *testing.T, path string) {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	next := st.ModTime().Add(time.Second)
	if err := os.Chtimes(path, next, next); err != nil {
		t.Fatal(err)
	}
}

func writeTopology(t *testing.T, path string, topo *Topology) {
	t.Helper()
	if err := topo.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	touch(t, path)
}

func TestDiffTopologies(t *testing.T) {
	old := testTopology()
	next := testTopology()
	next.Shards = []Shard{
		{ID: "shard-0", Addr: "s0:2"}, // moved
		{ID: "shard-2", Addr: "s2:1"}, // added (shard-1 removed)
	}
	next.Databases = []Database{
		{Name: "alpha", Category: "Health", Replicas: []string{"a1:1", "a2:1"}}, // a0 out, a2 in
		{Name: "gamma", Category: "Health", Replicas: []string{"g0:1"}},         // added (beta removed)
	}
	d := DiffTopologies(old, next)
	want := Diff{
		ShardsAdded:      []string{"shard-2"},
		ShardsRemoved:    []string{"shard-1"},
		ShardsMoved:      []string{"shard-0"},
		DatabasesAdded:   []string{"gamma"},
		DatabasesRemoved: []string{"beta"},
		ReplicasAdded:    map[string][]string{"alpha": {"a2:1"}},
		ReplicasRemoved:  map[string][]string{"alpha": {"a0:1"}},
	}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("diff mismatch:\n got %+v\nwant %+v", d, want)
	}
	if d.Empty() {
		t.Fatal("non-trivial diff reported Empty")
	}
	if d := DiffTopologies(old, testTopology()); !d.Empty() {
		t.Fatalf("identical topologies produced diff %+v", d)
	}
}

func TestWatcherSwapsOnValidChange(t *testing.T) {
	path := filepath.Join(t.TempDir(), "topology.json")
	if err := testTopology().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	w, err := NewWatcher(path, WatcherOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if g := w.Generation(); g != 1 {
		t.Fatalf("initial generation = %d, want 1", g)
	}

	var events []*Snapshot
	w.Subscribe(func(s *Snapshot) { events = append(events, s) })

	// Unchanged file: no swap, no event.
	if swapped, err := w.Poll(); err != nil || swapped {
		t.Fatalf("poll of unchanged file: swapped=%v err=%v", swapped, err)
	}

	// Rewrite with identical content (new mtime): still no swap.
	writeTopology(t, path, testTopology())
	if swapped, err := w.Poll(); err != nil || swapped {
		t.Fatalf("poll of identical rewrite: swapped=%v err=%v", swapped, err)
	}

	// A real change swaps, bumps the generation, and carries the diff.
	next := testTopology()
	next.Databases[1].Replicas = append(next.Databases[1].Replicas, "b1:1")
	writeTopology(t, path, next)
	swapped, err := w.Poll()
	if err != nil || !swapped {
		t.Fatalf("poll of changed file: swapped=%v err=%v", swapped, err)
	}
	snap := w.Snapshot()
	if snap.Generation != 2 {
		t.Fatalf("generation after swap = %d, want 2", snap.Generation)
	}
	if want := map[string][]string{"beta": {"b1:1"}}; !reflect.DeepEqual(snap.Diff.ReplicasAdded, want) {
		t.Fatalf("diff.ReplicasAdded = %+v, want %+v", snap.Diff.ReplicasAdded, want)
	}
	if len(events) != 1 || events[0] != snap {
		t.Fatalf("subscriber saw %d events, want exactly the published snapshot", len(events))
	}
	if got := reg.Snapshot().Gauges["topology_generation"]; got != 2 {
		t.Fatalf("topology_generation gauge = %v, want 2", got)
	}
	if got := reg.Snapshot().Counters["topology_reloads_total"]; got != 1 {
		t.Fatalf("topology_reloads_total = %d, want 1", got)
	}
}

func TestWatcherRejectsInvalidFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "topology.json")
	if err := testTopology().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	w, err := NewWatcher(path, WatcherOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	old := w.Snapshot()

	// Torn/garbage write: old snapshot kept, error counted.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	touch(t, path)
	swapped, err := w.Poll()
	if swapped || err == nil {
		t.Fatalf("poll of garbage file: swapped=%v err=%v", swapped, err)
	}
	if w.Snapshot() != old {
		t.Fatal("invalid file replaced the snapshot")
	}
	if got := reg.Snapshot().Counters["topology_reload_errors_total"]; got != 1 {
		t.Fatalf("topology_reload_errors_total = %d, want 1", got)
	}

	// The bad file's stat is remembered: no re-parse churn.
	if swapped, err := w.Poll(); swapped || err != nil {
		t.Fatalf("re-poll of same bad file: swapped=%v err=%v", swapped, err)
	}

	// Semantically invalid (no shards): also rejected.
	bad := testTopology()
	bad.Shards = nil
	writeTopology(t, path, bad)
	if swapped, err := w.Poll(); swapped || err == nil {
		t.Fatalf("poll of shardless topology: swapped=%v err=%v", swapped, err)
	}
	if w.Snapshot() != old {
		t.Fatal("invalid topology replaced the snapshot")
	}

	// A subsequent valid edit recovers.
	next := testTopology()
	next.Shards = next.Shards[:1]
	writeTopology(t, path, next)
	if swapped, err := w.Poll(); !swapped || err != nil {
		t.Fatalf("recovery poll: swapped=%v err=%v", swapped, err)
	}
	if g := w.Generation(); g != 2 {
		t.Fatalf("generation after recovery = %d, want 2 (rejected reloads must not burn generations)", g)
	}
}

func TestWatcherStartStop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "topology.json")
	if err := testTopology().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	w, err := NewWatcher(path, WatcherOptions{Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan int64, 16)
	w.Subscribe(func(s *Snapshot) { ch <- s.Generation })
	w.Start()
	defer w.Stop()

	next := testTopology()
	next.Databases[0].Replicas = next.Databases[0].Replicas[:1]
	writeTopology(t, path, next)

	select {
	case gen := <-ch:
		if gen != 2 {
			t.Fatalf("watched swap generation = %d, want 2", gen)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher never observed the rewrite")
	}
	w.Stop()
	w.Stop() // idempotent
}
