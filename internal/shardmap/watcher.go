package shardmap

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"os"
	"reflect"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Diff is the structured difference between two topologies: which
// shards and database replicas a reconfiguration added, removed, or
// moved. It is what a swap consumer needs to reconcile live state —
// drain removed replicas, lazily dial added ones — without re-deriving
// the change from two full files.
type Diff struct {
	// ShardsAdded/Removed list shard IDs new to / gone from the
	// topology; ShardsMoved lists shards whose gateway address changed.
	ShardsAdded   []string `json:"shards_added,omitempty"`
	ShardsRemoved []string `json:"shards_removed,omitempty"`
	ShardsMoved   []string `json:"shards_moved,omitempty"`
	// DatabasesAdded/Removed list database names that entered or left
	// the federation.
	DatabasesAdded   []string `json:"databases_added,omitempty"`
	DatabasesRemoved []string `json:"databases_removed,omitempty"`
	// ReplicasAdded/Removed map database name → replica addresses that
	// joined or left its replica set (for databases present on both
	// sides).
	ReplicasAdded   map[string][]string `json:"replicas_added,omitempty"`
	ReplicasRemoved map[string][]string `json:"replicas_removed,omitempty"`
}

// Empty reports whether the diff describes no change.
func (d Diff) Empty() bool {
	return len(d.ShardsAdded) == 0 && len(d.ShardsRemoved) == 0 && len(d.ShardsMoved) == 0 &&
		len(d.DatabasesAdded) == 0 && len(d.DatabasesRemoved) == 0 &&
		len(d.ReplicasAdded) == 0 && len(d.ReplicasRemoved) == 0
}

// DiffTopologies computes the structured difference from old to new.
// Both topologies should be validated; a nil old treats everything in
// new as added.
func DiffTopologies(old, new *Topology) Diff {
	var d Diff
	oldShards := make(map[string]string)
	if old != nil {
		for _, s := range old.Shards {
			oldShards[s.ID] = s.Addr
		}
	}
	newShards := make(map[string]string, len(new.Shards))
	for _, s := range new.Shards {
		newShards[s.ID] = s.Addr
		if addr, ok := oldShards[s.ID]; !ok {
			d.ShardsAdded = append(d.ShardsAdded, s.ID)
		} else if addr != s.Addr {
			d.ShardsMoved = append(d.ShardsMoved, s.ID)
		}
	}
	for id := range oldShards {
		if _, ok := newShards[id]; !ok {
			d.ShardsRemoved = append(d.ShardsRemoved, id)
		}
	}

	oldDBs := make(map[string][]string)
	if old != nil {
		for _, db := range old.Databases {
			oldDBs[db.Name] = db.Replicas
		}
	}
	newDBs := make(map[string][]string, len(new.Databases))
	for _, db := range new.Databases {
		newDBs[db.Name] = db.Replicas
		oldReplicas, ok := oldDBs[db.Name]
		if !ok {
			d.DatabasesAdded = append(d.DatabasesAdded, db.Name)
			continue
		}
		added := addrsMissing(db.Replicas, oldReplicas)
		removed := addrsMissing(oldReplicas, db.Replicas)
		if len(added) > 0 {
			if d.ReplicasAdded == nil {
				d.ReplicasAdded = make(map[string][]string)
			}
			d.ReplicasAdded[db.Name] = added
		}
		if len(removed) > 0 {
			if d.ReplicasRemoved == nil {
				d.ReplicasRemoved = make(map[string][]string)
			}
			d.ReplicasRemoved[db.Name] = removed
		}
	}
	for name := range oldDBs {
		if _, ok := newDBs[name]; !ok {
			d.DatabasesRemoved = append(d.DatabasesRemoved, name)
		}
	}
	sort.Strings(d.ShardsAdded)
	sort.Strings(d.ShardsRemoved)
	sort.Strings(d.ShardsMoved)
	sort.Strings(d.DatabasesAdded)
	sort.Strings(d.DatabasesRemoved)
	return d
}

// addrsMissing returns the elements of a not present in b, in a's order.
func addrsMissing(a, b []string) []string {
	in := make(map[string]bool, len(b))
	for _, x := range b {
		in[x] = true
	}
	var out []string
	for _, x := range a {
		if !in[x] {
			out = append(out, x)
		}
	}
	return out
}

// Snapshot is one published topology: the validated Topology, the
// monotonically increasing local generation stamped on it, and the diff
// against the previously published snapshot. Snapshots are immutable
// once published — consumers hold the pointer, never a lock.
//
// Generation is per-process and starts at 1 for the snapshot loaded at
// construction. It is not stored in the file: two processes watching
// the same file count their own reloads, and "the fleet converged"
// means every member reports a generation whose underlying file content
// matches — operationally, every member's generation bumped after the
// same edit.
type Snapshot struct {
	Topology   *Topology
	Generation int64
	LoadedAt   time.Time
	Diff       Diff
}

// WatcherOptions tunes a Watcher.
type WatcherOptions struct {
	// Interval is the stat-poll period (default 2s).
	Interval time.Duration
	// Metrics receives topology_generation (gauge),
	// topology_reloads_total, and topology_reload_errors_total (may be
	// nil).
	Metrics *telemetry.Registry
	// Logger, when non-nil, logs accepted swaps and rejected files.
	Logger *slog.Logger
	// Clock overrides time.Now (tests).
	Clock func() time.Time
}

// Watcher watches a topology file and publishes a new immutable
// Snapshot whenever the file changes to different, valid content. The
// detection is stat-based (mtime + size each Interval); a stat change
// triggers a full read, parse, and Validate, and only a file that both
// parses and validates replaces the current snapshot — an invalid or
// torn edit is rejected (counted in topology_reload_errors_total, old
// snapshot kept) rather than splitting the cluster's world view.
//
// Subscribers run synchronously on the watcher goroutine (or the Poll
// caller), in registration order, before the next poll; a subscriber is
// one process's swap hook (router ring swap, shard replica
// reconciliation, collector retargeting) and must not block for long.
type Watcher struct {
	path     string
	interval time.Duration
	clock    func() time.Time
	logger   *slog.Logger

	generation *telemetry.Gauge
	reloads    *telemetry.Counter
	reloadErrs *telemetry.Counter

	mu       sync.Mutex
	cur      *Snapshot
	lastMod  time.Time
	lastSize int64
	subs     []func(*Snapshot)

	started  bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewWatcher loads and validates the topology file and returns a
// watcher whose initial snapshot (generation 1) holds it. Call Start
// for the polling loop, Poll for a synchronous check (tests, admin
// triggers).
func NewWatcher(path string, opts WatcherOptions) (*Watcher, error) {
	if opts.Interval <= 0 {
		opts.Interval = 2 * time.Second
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	for _, d := range []struct{ name, help string }{
		{"topology_generation", "Generation of the topology snapshot this process is serving."},
		{"topology_reloads_total", "Topology file reloads accepted (snapshot swapped)."},
		{"topology_reload_errors_total", "Topology file reloads rejected (unreadable or invalid; old snapshot kept)."},
	} {
		opts.Metrics.Describe(d.name, d.help)
	}
	w := &Watcher{
		path:       path,
		interval:   opts.Interval,
		clock:      opts.Clock,
		logger:     opts.Logger,
		generation: opts.Metrics.Gauge("topology_generation"),
		reloads:    opts.Metrics.Counter("topology_reloads_total"),
		reloadErrs: opts.Metrics.Counter("topology_reload_errors_total"),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	topo, err := LoadFile(path)
	if err != nil {
		return nil, err
	}
	if st, err := os.Stat(path); err == nil {
		w.lastMod, w.lastSize = st.ModTime(), st.Size()
	}
	w.cur = &Snapshot{Topology: topo, Generation: 1, LoadedAt: w.clock()}
	w.generation.Set(1)
	return w, nil
}

// Snapshot returns the current immutable snapshot (never nil).
func (w *Watcher) Snapshot() *Snapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cur
}

// Generation returns the current snapshot's generation.
func (w *Watcher) Generation() int64 { return w.Snapshot().Generation }

// Subscribe registers fn to run on every accepted swap. Subscribers
// added after Start still see every subsequent swap; the initial
// snapshot is available via Snapshot, not delivered as an event.
func (w *Watcher) Subscribe(fn func(*Snapshot)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.subs = append(w.subs, fn)
}

// Poll checks the file once, synchronously: a changed, valid file is
// published (subscribers run before Poll returns) and Poll reports
// true. An unchanged file reports false with no error; a changed but
// unreadable or invalid file reports false with the error and keeps the
// current snapshot.
func (w *Watcher) Poll() (swapped bool, err error) {
	st, err := os.Stat(w.path)
	if err != nil {
		w.reloadErrs.Inc()
		return false, err
	}
	w.mu.Lock()
	unchanged := st.ModTime().Equal(w.lastMod) && st.Size() == w.lastSize
	w.mu.Unlock()
	if unchanged {
		return false, nil
	}
	topo, err := LoadFile(w.path)
	if err != nil {
		// Remember the rejected file's stat so an unfixed bad file is
		// not re-parsed every poll; the next edit triggers a fresh try.
		w.mu.Lock()
		w.lastMod, w.lastSize = st.ModTime(), st.Size()
		w.mu.Unlock()
		w.reloadErrs.Inc()
		if w.logger != nil {
			w.logger.Warn("topology reload rejected; keeping current snapshot", "path", w.path, "err", err)
		}
		return false, err
	}

	w.mu.Lock()
	w.lastMod, w.lastSize = st.ModTime(), st.Size()
	if reflect.DeepEqual(topo, w.cur.Topology) {
		// A touch or rewrite with identical content is not a topology
		// change; publishing it would churn every consumer for nothing.
		w.mu.Unlock()
		return false, nil
	}
	snap := &Snapshot{
		Topology:   topo,
		Generation: w.cur.Generation + 1,
		LoadedAt:   w.clock(),
		Diff:       DiffTopologies(w.cur.Topology, topo),
	}
	w.cur = snap
	subs := append([]func(*Snapshot){}, w.subs...)
	w.mu.Unlock()

	w.generation.Set(float64(snap.Generation))
	w.reloads.Inc()
	if w.logger != nil {
		w.logger.Info("topology swapped", "path", w.path, "generation", snap.Generation,
			"shards", len(snap.Topology.Shards), "databases", len(snap.Topology.Databases))
	}
	for _, fn := range subs {
		fn(snap)
	}
	return true, nil
}

// Start launches the polling loop. Stop with Stop.
func (w *Watcher) Start() {
	w.mu.Lock()
	if w.started {
		w.mu.Unlock()
		return
	}
	w.started = true
	w.mu.Unlock()
	go func() {
		defer close(w.done)
		t := time.NewTicker(w.interval)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				w.Poll()
			}
		}
	}()
}

// Stop halts the polling loop and waits for it to exit. Safe to call
// more than once, and before Start.
func (w *Watcher) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	w.mu.Lock()
	started := w.started
	w.mu.Unlock()
	if started {
		<-w.done
	}
}

// Handler serves the watcher's state as JSON — the shard-side
// /debug/topology endpoint:
//
//	{"path": ..., "generation": 3, "loaded_at": ..., "last_diff": {...}}
func (w *Watcher) Handler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		snap := w.Snapshot()
		rw.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(rw)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Path       string    `json:"path"`
			Generation int64     `json:"generation"`
			LoadedAt   time.Time `json:"loaded_at"`
			Shards     int       `json:"shards"`
			Databases  int       `json:"databases"`
			LastDiff   Diff      `json:"last_diff"`
		}{w.path, snap.Generation, snap.LoadedAt, len(snap.Topology.Shards), len(snap.Topology.Databases), snap.Diff})
	})
}
