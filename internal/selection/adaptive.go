package selection

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/stats"
	"repro/internal/summary"
	"repro/internal/telemetry"
)

// DB is one database as seen by the adaptive algorithm: both candidate
// content summaries plus the statistics the uncertainty model needs.
type DB struct {
	Name string
	// Unshrunk is the sample-derived summary Ŝ(D); its SampleSize and
	// per-word SampleDF are the s_k and |S| of Section 4.
	Unshrunk *summary.Summary
	// Shrunk is the shrinkage-based summary R̂(D); nil disables
	// shrinkage for this database.
	Shrunk summary.View
	// Gamma is the database's frequency power-law exponent γ
	// ("approximately c·f^γ words have frequency f", Appendix B),
	// derivable from the Appendix A fit as γ = 1/α − 1. Zero selects
	// the pure-Zipf default −2.
	Gamma float64
	// Size is the estimated database size |D| the uncertainty model
	// uses (Equation 3). It is always the sample–resample estimate,
	// even when the scoring summary keeps raw sample frequencies; zero
	// falls back to Unshrunk's document count.
	Size int
}

// size returns the |D| the uncertainty model should use.
func (db *DB) size() int {
	if db.Size > 0 {
		return db.Size
	}
	return int(db.Unshrunk.NumDocs)
}

// AdaptiveOptions tunes the Monte-Carlo score-distribution estimation.
type AdaptiveOptions struct {
	// MaxCombos caps the number of random d1..dn combinations examined
	// per database (default 400; the paper reports convergence "after
	// examining just a few hundred").
	MaxCombos int
	// Batch is how many combinations are drawn between convergence
	// checks (default 50).
	Batch int
	// RelTol is the relative mean/stddev stability required to stop
	// early (default 0.02).
	RelTol float64
	// GridMax bounds the support grid of each word's document-frequency
	// distribution (default 256); larger databases use a geometric grid.
	GridMax int
	// AbsentPrior is the prior weight of d = 0 (the query word absent
	// from the database altogether) relative to d = 1, for words that
	// never appeared in the sample (default 3: in a typical collection
	// the words absent from a database outnumber its singletons).
	AbsentPrior float64
	// Seed drives the Monte-Carlo draws.
	Seed int64
	// Span receives one adaptive.decide trace event per database
	// (score mean/σ, combinations examined, the shrink-or-not verdict);
	// Metrics receives the adaptive_* counters. Both may be nil.
	Span    *telemetry.Span
	Metrics *telemetry.Registry
}

func (o AdaptiveOptions) withDefaults() AdaptiveOptions {
	if o.MaxCombos == 0 {
		o.MaxCombos = 400
	}
	if o.Batch == 0 {
		o.Batch = 50
	}
	if o.RelTol == 0 {
		o.RelTol = 0.02
	}
	if o.GridMax == 0 {
		o.GridMax = 256
	}
	if o.AbsentPrior == 0 {
		o.AbsentPrior = 3
	}
	return o
}

// Adaptive implements the Figure 3 algorithm: for each database it
// estimates the uncertainty of the selection score under the posterior
// distribution of the query words' true document frequencies
// (Appendix B) and uses the shrunk summary only when the score's
// standard deviation exceeds its mean.
type Adaptive struct {
	Base Scorer
	Opts AdaptiveOptions
}

// Decision records the outcome of the content-summary selection step
// for one database.
type Decision struct {
	// Shrinkage reports whether the shrunk summary was chosen.
	Shrinkage bool
	// Mean and StdDev describe the estimated score distribution.
	Mean, StdDev float64
	// Combos is the number of d1..dn combinations examined.
	Combos int
	// Score is s(q, D) under the chosen summary view — the score the
	// final ranking used (filled by Rank, zero after Choose alone).
	Score float64
}

// Choose runs the "Content Summary Selection" step for every database,
// returning the chosen view and the decision diagnostics. ctx must be
// built over the unshrunk summaries (the information available before
// any choice is made).
func (a *Adaptive) Choose(q []string, dbs []*DB, ctx *Context) ([]summary.View, []Decision) {
	opts := a.Opts.withDefaults()
	applied := opts.Metrics.Counter("adaptive_shrinkage_applied_total")
	skipped := opts.Metrics.Counter("adaptive_shrinkage_skipped_total")
	mcSamples := opts.Metrics.Counter("adaptive_mc_samples_total")
	views := make([]summary.View, len(dbs))
	decisions := make([]Decision, len(dbs))
	anyShrunk := false
	for i, db := range dbs {
		d := a.decide(q, db, ctx, opts, int64(i))
		decisions[i] = d
		if d.Shrinkage && db.Shrunk != nil {
			views[i] = db.Shrunk
		} else {
			views[i] = db.Unshrunk
		}
		mcSamples.Add(int64(d.Combos))
		if d.Shrinkage {
			applied.Inc()
			anyShrunk = true
		} else {
			skipped.Inc()
		}
		opts.Span.Event("adaptive.decide",
			telemetry.String("db", db.Name),
			telemetry.Float("mean", d.Mean),
			telemetry.Float("stddev", d.StdDev),
			telemetry.Int("combos", d.Combos),
			telemetry.Bool("shrinkage", d.Shrinkage))
	}
	// Per-query application rate (the paper's adaptive criterion fires
	// per query-database pair; operators also want "how many queries saw
	// shrinkage at all").
	opts.Metrics.Counter("adaptive_queries_total").Inc()
	if anyShrunk {
		opts.Metrics.Counter("adaptive_queries_shrunk_total").Inc()
	}
	return views, decisions
}

// Rank performs the complete Figure 3 algorithm: choose a summary per
// database, rebuild the corpus context over the chosen summaries, and
// rank with the base scorer.
func (a *Adaptive) Rank(q []string, dbs []*DB, global summary.View) ([]Ranked, []Decision) {
	unshrunk := make([]Entry, len(dbs))
	for i, db := range dbs {
		unshrunk[i] = Entry{Name: db.Name, View: db.Unshrunk}
	}
	ctx0 := NewContext(q, unshrunk, global)
	views, decisions := a.Choose(q, dbs, ctx0)

	chosen := make([]Entry, len(dbs))
	for i, v := range views {
		chosen[i] = Entry{Name: dbs[i].Name, View: v}
	}
	ctx1 := NewContext(q, chosen, global)
	ranked, scores := RankWithScores(a.Base, q, chosen, ctx1)
	for i := range decisions {
		decisions[i].Score = scores[i]
	}
	return ranked, decisions
}

// decide estimates the score distribution of one database and applies
// the std > mean rule.
func (a *Adaptive) decide(q []string, db *DB, ctx *Context, opts AdaptiveOptions, stream int64) Decision {
	words := UniqueWords(q)
	n := db.size()
	if n < 1 || len(words) == 0 || db.Shrunk == nil {
		return Decision{}
	}
	gamma := db.Gamma
	if gamma == 0 {
		gamma = -2
	}
	dists := make([]*dfDist, len(words))
	for i, w := range words {
		dists[i] = newDFDist(n, db.Unshrunk.SampleSize, db.Unshrunk.SampleDF(w), gamma, opts.GridMax, opts.AbsentPrior)
	}

	rng := rand.New(rand.NewSource(opts.Seed ^ int64(uint64(stream)*0x9e3779b97f4a7c15)))
	over := &overrideView{base: db.Unshrunk, p: make(map[string]float64, len(words))}
	var welford stats.Welford
	prevMean, prevStd := math.Inf(1), math.Inf(1)
	combos := 0
	for combos < opts.MaxCombos {
		for b := 0; b < opts.Batch && combos < opts.MaxCombos; b++ {
			for i, w := range words {
				dk := dists[i].sample(rng)
				over.p[w] = float64(dk) / float64(n)
			}
			welford.Add(a.Base.Score(q, over, ctx))
			combos++
		}
		mean, std := welford.Mean(), welford.StdDev()
		if relClose(mean, prevMean, opts.RelTol) && relClose(std, prevStd, opts.RelTol) {
			break
		}
		prevMean, prevStd = mean, std
	}
	mean, std := welford.Mean(), welford.StdDev()
	// Figure 3's rule: shrink when the standard deviation of the score
	// distribution exceeds its mean. The rule must be applied net of
	// the scorer's information-free baseline:
	//
	//   - For product scorers (bGlOSS, LM) the baseline is a
	//     multiplicative constant (1 and Π(1−λ)p̂G respectively), under
	//     which std > mean is already scale-invariant: the raw rule.
	//   - For CORI the baseline 0.4 enters additively, so it is
	//     subtracted first — otherwise scores bounded below by 0.4
	//     could never satisfy the rule at all.
	//
	// A distribution collapsed onto the baseline itself (every sampled
	// d1..dn combination yields the default score) means the unshrunk
	// summary cannot discriminate the database for this query at all —
	// maximum uncertainty — so shrinkage applies.
	baseline := 0.0
	if ab, ok := a.Base.(AdditiveBaseline); ok && ab.AdditiveBaseline() {
		baseline = a.Base.DefaultScore(q, db.Unshrunk, ctx)
	}
	info := mean - baseline
	uncertain := std > info
	if std == 0 && info <= 0 {
		uncertain = true
	}
	return Decision{Shrinkage: uncertain, Mean: mean, StdDev: std, Combos: combos}
}

// AdditiveBaseline is implemented by scorers whose default score is an
// additive offset carrying no query evidence (CORI's 0.4 belief floor);
// the adaptive rule subtracts it before comparing std against mean.
type AdditiveBaseline interface {
	AdditiveBaseline() bool
}

func relClose(a, b, tol float64) bool {
	if math.IsInf(b, 0) {
		return false
	}
	return math.Abs(a-b) <= tol*(math.Abs(a)+1e-9)
}

// dfDist is the posterior distribution of a query word's true document
// frequency d in a database of n documents, given that the word
// appeared in sk of the |S| sample documents (Equation 3): the binomial
// sampling likelihood times the power-law prior p(d) ∝ d^γ, evaluated
// on a (possibly geometric) support grid with interval weights.
type dfDist struct {
	ds  []int
	cdf []float64
}

func newDFDist(n, sampleSize, sk int, gamma float64, gridMax int, absentPrior float64) *dfDist {
	if sampleSize > n {
		sampleSize = n
	}
	// Support grid over d = 1..n; d = 0 is appended afterwards for
	// words the sample never saw.
	var ds []int
	var widths []float64
	if n <= gridMax {
		ds = make([]int, n)
		widths = make([]float64, n)
		for i := range ds {
			ds[i] = i + 1
			widths[i] = 1
		}
	} else {
		// Geometric grid: exact low values, then multiplicative steps.
		ratio := math.Pow(float64(n), 1/float64(gridMax-1))
		if ratio < 1.0001 {
			ratio = 1.0001
		}
		prev := 0
		x := 1.0
		for prev < n {
			d := int(x)
			if d <= prev {
				d = prev + 1
			}
			if d > n {
				d = n
			}
			ds = append(ds, d)
			widths = append(widths, float64(d-prev))
			prev = d
			x *= ratio
		}
	}
	// Log-density at each grid point.
	logp := make([]float64, len(ds))
	maxLP := math.Inf(-1)
	fn := float64(n)
	fs := float64(sampleSize)
	fsk := float64(sk)
	for i, d := range ds {
		fd := float64(d)
		frac := fd / fn
		var lp float64
		if sk > 0 {
			lp += fsk * math.Log(frac)
		}
		if fs-fsk > 0 {
			if frac >= 1 {
				// d = n with sk < |S| is impossible.
				lp = math.Inf(-1)
			} else {
				lp += (fs - fsk) * math.Log(1-frac)
			}
		}
		if !math.IsInf(lp, -1) {
			lp += gamma*math.Log(fd) + math.Log(widths[i])
		}
		logp[i] = lp
		if lp > maxLP {
			maxLP = lp
		}
	}
	// A word never seen in the sample may be absent from the database
	// altogether: give d = 0 prior mass proportional to d = 1's density
	// (its binomial miss-likelihood is exactly 1).
	if sk == 0 && absentPrior > 0 && len(logp) > 0 && !math.IsInf(logp[0], -1) {
		ds = append([]int{0}, ds...)
		logp = append([]float64{logp[0] + math.Log(absentPrior)}, logp...)
		if logp[0] > maxLP {
			maxLP = logp[0]
		}
	}
	dist := &dfDist{ds: ds, cdf: make([]float64, len(ds))}
	var sum float64
	for i, lp := range logp {
		var p float64
		if !math.IsInf(lp, -1) {
			p = math.Exp(lp - maxLP)
		}
		sum += p
		dist.cdf[i] = sum
	}
	if sum <= 0 {
		// Degenerate; fall back to uniform.
		for i := range dist.cdf {
			dist.cdf[i] = float64(i+1) / float64(len(dist.cdf))
		}
		return dist
	}
	inv := 1 / sum
	for i := range dist.cdf {
		dist.cdf[i] *= inv
	}
	dist.cdf[len(dist.cdf)-1] = 1
	return dist
}

// sample draws one document-frequency value.
func (d *dfDist) sample(rng *rand.Rand) int {
	u := rng.Float64()
	i := sort.SearchFloat64s(d.cdf, u)
	if i >= len(d.ds) {
		i = len(d.ds) - 1
	}
	return d.ds[i]
}

// mean returns the distribution's expected document frequency (used in
// tests and diagnostics).
func (d *dfDist) mean() float64 {
	var m, prev float64
	for i, c := range d.cdf {
		m += float64(d.ds[i]) * (c - prev)
		prev = c
	}
	return m
}

// overrideView scores a database under a hypothesized document
// frequency assignment for the query words: P is replaced outright and
// Ptf is scaled proportionally (or set directly when the base had no
// estimate), leaving all other words untouched.
type overrideView struct {
	base summary.View
	p    map[string]float64
}

func (v *overrideView) DocCount() float64  { return v.base.DocCount() }
func (v *overrideView) WordCount() float64 { return v.base.WordCount() }

func (v *overrideView) P(w string) float64 {
	if p, ok := v.p[w]; ok {
		return p
	}
	return v.base.P(w)
}

func (v *overrideView) Ptf(w string) float64 {
	p, ok := v.p[w]
	if !ok {
		return v.base.Ptf(w)
	}
	baseP := v.base.P(w)
	if baseP <= 0 {
		// No base estimate to scale: convert the hypothesized document
		// fraction to the term-frequency scale. A word in d of |D|
		// documents occurs at least d times among cw(D) tokens, so
		// ptf ≈ d/cw = p·|D|/cw. Returning p itself would be a
		// document-fraction value (orders of magnitude too large for a
		// term fraction) and would wildly inflate LM score variance.
		if cw := v.base.WordCount(); cw > 0 {
			return p * v.base.DocCount() / cw
		}
		return p
	}
	return v.base.Ptf(w) * p / baseP
}
