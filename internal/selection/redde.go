package selection

import (
	"errors"
	"sort"

	"repro/internal/index"
)

// ReDDE implements the Relevant Document Distribution Estimation
// selection algorithm of Si & Callan (SIGIR 2003). The paper's
// footnote 9 names combining ReDDE with shrinkage as interesting future
// work; this implementation provides ReDDE as an additional baseline
// (and the experiment harness exercises it next to the paper's three
// base scorers).
//
// ReDDE pools every database's sampled documents into one centralized
// sample index. For a query, it retrieves the top of that pooled
// ranking; each sampled document stands for |D̂|/|S_D| documents of its
// source database. Walking the ranking until the accumulated mass
// reaches Ratio × Σ|D̂| (the assumed relevant fraction of the total
// collection), each database's score is the mass its documents
// contributed — an estimate of its relevant-document count.
type ReDDE struct {
	ratio   float64
	csi     *index.Index
	owner   []int // pooled doc -> database ordinal
	weights []float64
	names   []string
	total   float64 // Σ|D̂|
}

// ReDDESample is one database's contribution to the centralized index.
type ReDDESample struct {
	Name string
	// Docs are the database's sampled documents (analyzed terms).
	Docs [][]string
	// Size is the (estimated) database size |D̂|.
	Size float64
}

// NewReDDE builds the centralized sample index. ratio is the assumed
// fraction of the total collection that is relevant to a query
// (Si & Callan use 0.003; 0 selects that default).
func NewReDDE(samples []ReDDESample, ratio float64) (*ReDDE, error) {
	if ratio == 0 {
		ratio = 0.003
	}
	if ratio < 0 || ratio > 1 {
		return nil, errors.New("selection: ReDDE ratio must be in (0, 1]")
	}
	r := &ReDDE{ratio: ratio}
	b := index.NewBuilder(0)
	for di, s := range samples {
		if len(s.Docs) == 0 {
			// A database with no sample can never be selected, but it
			// still needs a name slot.
			r.names = append(r.names, s.Name)
			r.weights = append(r.weights, 0)
			r.total += s.Size
			_ = di
			continue
		}
		w := s.Size / float64(len(s.Docs))
		if w < 1 {
			w = 1
		}
		for _, doc := range s.Docs {
			b.Add(doc)
			r.owner = append(r.owner, len(r.names))
		}
		r.names = append(r.names, s.Name)
		r.weights = append(r.weights, w)
		r.total += s.Size
	}
	if r.total <= 0 {
		return nil, errors.New("selection: ReDDE needs a non-empty collection")
	}
	r.csi = b.Build()
	return r, nil
}

// Name identifies the algorithm.
func (r *ReDDE) Name() string { return "ReDDE" }

// Rank returns the databases ordered by their estimated number of
// relevant documents for the query. Databases contributing nothing to
// the relevant region are not selected. Index fields refer to the
// sample order given to NewReDDE.
func (r *ReDDE) Rank(q []string) []Ranked {
	// Retrieve enough of the pooled ranking to cover the relevant
	// region: documents are weighted, so the region ends after at most
	// target/minWeight ≤ target documents (weights are >= 1).
	target := r.ratio * r.total
	limit := int(target) + 1
	if limit > r.csi.NumDocs() {
		limit = r.csi.NumDocs()
	}
	_, top := r.csi.SearchAny(q, limit)

	mass := make(map[int]float64)
	var acc float64
	for _, res := range top {
		if acc >= target {
			break
		}
		db := r.owner[res.Doc]
		w := r.weights[db]
		mass[db] += w
		acc += w
	}
	out := make([]Ranked, 0, len(mass))
	for db, m := range mass {
		out = append(out, Ranked{Index: db, Name: r.names[db], Score: m})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Name < out[b].Name
	})
	return out
}
