package selection

import (
	"math"
	"testing"

	"repro/internal/summary"
)

// mkView builds a plain summary view.
func mkView(numDocs, cw float64, words map[string]float64) *summary.Summary {
	s := &summary.Summary{NumDocs: numDocs, CW: cw, Words: map[string]summary.Word{}}
	for w, p := range words {
		s.Words[w] = summary.Word{P: p, Ptf: p / 10}
	}
	return s
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBGlossExample2(t *testing.T) {
	// Example 2 / Table 1 of the paper: for [blood hypertension], D2
	// (Health) must outscore D1 (CS).
	d1 := mkView(51500, 5e6, map[string]float64{
		"algorithm": 0.14, "blood": 1.9e-5, "hypertension": 3.8e-5,
	})
	d2 := mkView(25730, 2.5e6, map[string]float64{
		"algorithm": 2e-4, "blood": 0.42, "hypertension": 0.32,
	})
	q := []string{"blood", "hypertension"}
	var b BGloss
	s1 := b.Score(q, d1, nil)
	s2 := b.Score(q, d2, nil)
	if s2 <= s1 {
		t.Errorf("bGlOSS: D2 (%v) should outscore D1 (%v)", s2, s1)
	}
	// Hand check: 25730 * 0.42 * 0.32.
	if want := 25730 * 0.42 * 0.32; !approx(s2, want, 1e-9) {
		t.Errorf("s2 = %v, want %v", s2, want)
	}
}

func TestBGlossZeroOnMissingWord(t *testing.T) {
	d := mkView(100, 1000, map[string]float64{"blood": 0.5})
	var b BGloss
	if s := b.Score([]string{"blood", "unicorn"}, d, nil); s != 0 {
		t.Errorf("score = %v, want 0", s)
	}
	if b.DefaultScore([]string{"x"}, d, nil) != 0 {
		t.Error("bGlOSS default should be 0")
	}
	// Duplicate query words count once.
	s1 := b.Score([]string{"blood"}, d, nil)
	s2 := b.Score([]string{"blood", "blood"}, d, nil)
	if s1 != s2 {
		t.Errorf("duplicates change score: %v vs %v", s1, s2)
	}
}

func TestCORIScore(t *testing.T) {
	d1 := mkView(1000, 100000, map[string]float64{"blood": 0.3})
	d2 := mkView(1000, 100000, map[string]float64{})
	entries := []Entry{{Name: "d1", View: d1}, {Name: "d2", View: d2}}
	q := []string{"blood"}
	ctx := NewContext(q, entries, nil)
	if ctx.CF["blood"] != 1 {
		t.Fatalf("cf(blood) = %d, want 1", ctx.CF["blood"])
	}
	var c CORI
	// Hand computation: df = 300, cw/mcw = 1, T = 300/(300+50+150) = 0.6;
	// I = log(2.5/1)/log(3); s = 0.4 + 0.6*T*I.
	wantI := math.Log(2.5) / math.Log(3)
	want := 0.4 + 0.6*0.6*wantI
	if got := c.Score(q, d1, ctx); !approx(got, want, 1e-12) {
		t.Errorf("CORI score = %v, want %v", got, want)
	}
	// Database without the word gets exactly the default 0.4.
	if got := c.Score(q, d2, ctx); !approx(got, 0.4, 1e-12) {
		t.Errorf("empty database score = %v, want 0.4", got)
	}
	if c.DefaultScore(q, d2, ctx) != 0.4 {
		t.Error("default != 0.4")
	}
}

func TestCORIEffectiveDFRule(t *testing.T) {
	// A shrunk-style summary with tiny p̂ must not count towards cf:
	// round(|D̂|·p̂) = round(0.3) = 0.
	dTiny := mkView(1000, 1000, map[string]float64{"w": 0.0003})
	dReal := mkView(1000, 1000, map[string]float64{"w": 0.2})
	ctx := NewContext([]string{"w"}, []Entry{{View: dTiny}, {View: dReal}}, nil)
	if ctx.CF["w"] != 1 {
		t.Errorf("cf = %d, want 1 (tiny probability excluded)", ctx.CF["w"])
	}
}

func TestLMScoreAndDefault(t *testing.T) {
	global := mkView(0, 0, map[string]float64{"blood": 0.1, "goal": 0.2})
	d := mkView(100, 1000, map[string]float64{"blood": 0.4})
	ctx := &Context{Global: global}
	lm := LM{}
	// s = (0.5*0.04 + 0.5*0.01) -> using Ptf = P/10 in mkView.
	want := 0.5*0.04 + 0.5*0.01
	if got := lm.Score([]string{"blood"}, d, ctx); !approx(got, want, 1e-12) {
		t.Errorf("LM score = %v, want %v", got, want)
	}
	// Default: only the global part.
	if got := lm.DefaultScore([]string{"blood"}, d, ctx); !approx(got, 0.5*0.01, 1e-12) {
		t.Errorf("LM default = %v", got)
	}
	// A word with no global and no local probability zeroes the score.
	if got := lm.Score([]string{"unicorn"}, d, ctx); got != 0 {
		t.Errorf("score = %v, want 0", got)
	}
	// Nil global is tolerated.
	if got := lm.Score([]string{"blood"}, d, &Context{}); !approx(got, 0.5*0.04, 1e-12) {
		t.Errorf("nil-global score = %v", got)
	}
}

func TestRankFiltersAndOrders(t *testing.T) {
	q := []string{"blood"}
	entries := []Entry{
		{Name: "none", View: mkView(100, 1000, nil)},
		{Name: "strong", View: mkView(100, 1000, map[string]float64{"blood": 0.9})},
		{Name: "weak", View: mkView(100, 1000, map[string]float64{"blood": 0.1})},
	}
	ctx := NewContext(q, entries, nil)
	ranked := Rank(BGloss{}, q, entries, ctx)
	if len(ranked) != 2 {
		t.Fatalf("selected %d databases, want 2 (default-score db excluded)", len(ranked))
	}
	if ranked[0].Name != "strong" || ranked[1].Name != "weak" {
		t.Errorf("order = %v", ranked)
	}
	if ranked[0].Index != 1 {
		t.Errorf("Index = %d, want 1", ranked[0].Index)
	}
}

func TestRankDeterministicTieBreak(t *testing.T) {
	q := []string{"w"}
	v := map[string]float64{"w": 0.5}
	entries := []Entry{
		{Name: "b", View: mkView(100, 1000, v)},
		{Name: "a", View: mkView(100, 1000, v)},
	}
	ctx := NewContext(q, entries, nil)
	ranked := Rank(BGloss{}, q, entries, ctx)
	if ranked[0].Name != "a" || ranked[1].Name != "b" {
		t.Errorf("tie break not alphabetical: %v", ranked)
	}
}

func TestUniqueWords(t *testing.T) {
	got := UniqueWords([]string{"a", "b", "a", "c", "b"})
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("UniqueWords = %v", got)
	}
}

func TestNewContextStats(t *testing.T) {
	entries := []Entry{
		{View: mkView(10, 100, map[string]float64{"x": 0.5})},
		{View: mkView(10, 300, map[string]float64{"x": 0.5, "y": 0.5})},
	}
	ctx := NewContext([]string{"x", "y", "z"}, entries, nil)
	if ctx.M != 2 {
		t.Errorf("M = %d", ctx.M)
	}
	if !approx(ctx.MeanCW, 200, 1e-12) {
		t.Errorf("MeanCW = %v", ctx.MeanCW)
	}
	if ctx.CF["x"] != 2 || ctx.CF["y"] != 1 || ctx.CF["z"] != 0 {
		t.Errorf("CF = %v", ctx.CF)
	}
}

// Property: every scorer is monotone in a query word's probability —
// raising p̂(w|D) never lowers s(q, D).
func TestScorersMonotoneInProbability(t *testing.T) {
	q := []string{"w", "other"}
	global := mkView(0, 0, map[string]float64{"w": 0.05, "other": 0.02})
	for _, tc := range []struct {
		name   string
		scorer Scorer
	}{
		{"bGlOSS", BGloss{}},
		{"CORI", CORI{}},
		{"LM", LM{}},
	} {
		prev := -1.0
		for _, p := range []float64{0, 0.001, 0.01, 0.1, 0.4, 0.9} {
			v := mkView(1000, 100000, map[string]float64{"w": p, "other": 0.2})
			ctx := NewContext(q, []Entry{{Name: "d", View: v}}, global)
			ctx.CF["w"] = 1 // hold corpus stats fixed across p values
			ctx.CF["other"] = 1
			s := tc.scorer.Score(q, v, ctx)
			if s < prev-1e-12 {
				t.Errorf("%s: score decreased when p rose to %v: %v -> %v", tc.name, p, prev, s)
			}
			prev = s
		}
	}
}

// Property: scores never fall below the scorer's default.
func TestScoresNeverBelowDefault(t *testing.T) {
	q := []string{"a", "b", "c"}
	global := mkView(0, 0, map[string]float64{"a": 0.1, "b": 0.01})
	views := []summary.View{
		mkView(10, 100, nil),
		mkView(10, 100, map[string]float64{"a": 0.5}),
		mkView(100000, 1e7, map[string]float64{"a": 1, "b": 1, "c": 1}),
	}
	entries := make([]Entry, len(views))
	for i, v := range views {
		entries[i] = Entry{Name: string(rune('a' + i)), View: v}
	}
	ctx := NewContext(q, entries, global)
	for _, sc := range []Scorer{BGloss{}, CORI{}, LM{}} {
		for _, v := range views {
			s := sc.Score(q, v, ctx)
			d := sc.DefaultScore(q, v, ctx)
			if s < d-1e-12 {
				t.Errorf("%s: score %v below default %v", sc.Name(), s, d)
			}
		}
	}
}

func TestAboveDefault(t *testing.T) {
	if !aboveDefault(1e-80, 0) {
		t.Error("tiny positive score above zero default should qualify")
	}
	if aboveDefault(0, 0) {
		t.Error("zero score must not qualify")
	}
	if aboveDefault(0.4, 0.4) {
		t.Error("exactly-default score must not qualify")
	}
	if !aboveDefault(0.41, 0.4) {
		t.Error("above-default score should qualify")
	}
	if aboveDefault(0.4+1e-14, 0.4) {
		t.Error("float-noise-above-default must not qualify")
	}
}
