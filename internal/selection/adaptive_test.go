package selection

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/summary"
)

// sampleSummary builds an Ŝ(D)-style summary: |D̂| docs estimated from
// a sample of sampleSize docs, with per-word sample document counts.
func sampleSummary(numDocs float64, sampleSize int, sampleDF map[string]int) *summary.Summary {
	s := &summary.Summary{
		NumDocs:    numDocs,
		CW:         numDocs * 100,
		SampleSize: sampleSize,
		Words:      map[string]summary.Word{},
	}
	for w, df := range sampleDF {
		p := float64(df) / float64(sampleSize)
		s.Words[w] = summary.Word{P: p, Ptf: p / 50, SampleDF: df}
	}
	return s
}

func TestDFDistConcentratesOnObservedFraction(t *testing.T) {
	// A word in half the sample docs of a fully known database: the
	// posterior over d should center near n/2.
	d := newDFDist(1000, 200, 100, -2, 256, 3)
	m := d.mean()
	if m < 350 || m > 600 {
		t.Errorf("posterior mean = %v, want near 500", m)
	}
}

func TestDFDistZeroSampleCount(t *testing.T) {
	// A word absent from the sample: the posterior should concentrate
	// on small d (power-law prior + binomial miss likelihood), with
	// real mass on d = 0 (the word absent from the database).
	d := newDFDist(10000, 300, 0, -2, 256, 3)
	m := d.mean()
	if m > 100 {
		t.Errorf("posterior mean for unseen word = %v, want small", m)
	}
	rng := rand.New(rand.NewSource(5))
	zeros := 0
	for i := 0; i < 500; i++ {
		if d.sample(rng) == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Error("d = 0 never sampled for an unseen word")
	}
	// ... but with a tiny sample, large d stays plausible.
	d2 := newDFDist(10000, 5, 0, -2, 256, 3)
	if d2.mean() <= m {
		t.Errorf("smaller sample should admit larger d: %v vs %v", d2.mean(), m)
	}
}

func TestDFDistFullSampleSaturates(t *testing.T) {
	// Word in every document of a fully sampled database: d must be n.
	d := newDFDist(300, 300, 300, -2, 512, 3)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		if got := d.sample(rng); got < 295 {
			t.Fatalf("sampled d = %d, want ≈ 300", got)
		}
	}
}

func TestDFDistNoAbsentMassForSeenWords(t *testing.T) {
	d := newDFDist(1000, 100, 3, -2, 256, 3)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		if d.sample(rng) == 0 {
			t.Fatal("d = 0 sampled for a word present in the sample")
		}
	}
}

func TestDFDistSamplesWithinSupport(t *testing.T) {
	d := newDFDist(100000, 300, 7, -1.8, 128, 3)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		got := d.sample(rng)
		if got < 0 || got > 100000 {
			t.Fatalf("sample out of support: %d", got)
		}
	}
}

func TestOverrideView(t *testing.T) {
	base := sampleSummary(1000, 100, map[string]int{"a": 50, "b": 10})
	v := &overrideView{base: base, p: map[string]float64{"a": 0.8, "zz": 0.01}}
	if v.P("a") != 0.8 {
		t.Errorf("override P = %v", v.P("a"))
	}
	if v.P("b") != base.P("b") {
		t.Error("non-overridden word changed")
	}
	// Ptf scales proportionally with the P override.
	wantPtf := base.Ptf("a") * 0.8 / base.P("a")
	if !approx(v.Ptf("a"), wantPtf, 1e-12) {
		t.Errorf("Ptf = %v, want %v", v.Ptf("a"), wantPtf)
	}
	// Word unknown to the base: the hypothesized document fraction is
	// converted to the term-frequency scale, ptf ≈ p·|D|/cw.
	wantZZ := 0.01 * base.DocCount() / base.WordCount()
	if !approx(v.Ptf("zz"), wantZZ, 1e-15) {
		t.Errorf("Ptf(zz) = %v, want %v", v.Ptf("zz"), wantZZ)
	}
	if v.DocCount() != 1000 {
		t.Error("DocCount not delegated")
	}
}

func TestAdaptiveSkipsShrinkageWhenSampleIsComplete(t *testing.T) {
	// Sample = whole database: no uncertainty, shrinkage must be off.
	unshrunk := sampleSummary(300, 300, map[string]int{"blood": 150})
	shrunk := mkView(300, 30000, map[string]float64{"blood": 0.5, "extra": 0.1})
	db := &DB{Name: "d", Unshrunk: unshrunk, Shrunk: shrunk}
	a := &Adaptive{Base: BGloss{}}
	ctx := NewContext([]string{"blood"}, []Entry{{View: unshrunk}}, nil)
	_, decisions := a.Choose([]string{"blood"}, []*DB{db}, ctx)
	if decisions[0].Shrinkage {
		t.Errorf("shrinkage applied to a fully sampled database (mean %v, std %v)",
			decisions[0].Mean, decisions[0].StdDev)
	}
}

func TestAdaptiveAppliesShrinkageForUnseenWordBGloss(t *testing.T) {
	// A rare query word absent from a small sample of a large database:
	// bGlOSS scores are 0-or-something, std/mean is large, shrinkage on.
	unshrunk := sampleSummary(50000, 300, map[string]int{"common": 250})
	shrunk := mkView(50000, 5e6, map[string]float64{"common": 0.8, "hemophilia": 0.001})
	db := &DB{Name: "pubmed", Unshrunk: unshrunk, Shrunk: shrunk}
	a := &Adaptive{Base: BGloss{}}
	q := []string{"hemophilia"}
	ctx := NewContext(q, []Entry{{View: unshrunk}}, nil)
	views, decisions := a.Choose(q, []*DB{db}, ctx)
	if !decisions[0].Shrinkage {
		t.Errorf("shrinkage not applied for unseen rare word (mean %v, std %v)",
			decisions[0].Mean, decisions[0].StdDev)
	}
	if views[0] != summary.View(shrunk) {
		t.Error("chosen view is not the shrunk summary")
	}
}

func TestAdaptiveNoShrunkSummaryAvailable(t *testing.T) {
	unshrunk := sampleSummary(50000, 300, map[string]int{})
	db := &DB{Name: "d", Unshrunk: unshrunk, Shrunk: nil}
	a := &Adaptive{Base: BGloss{}}
	ctx := NewContext([]string{"w"}, []Entry{{View: unshrunk}}, nil)
	views, decisions := a.Choose([]string{"w"}, []*DB{db}, ctx)
	if decisions[0].Shrinkage {
		t.Error("shrinkage reported without a shrunk summary")
	}
	if views[0] != summary.View(unshrunk) {
		t.Error("must fall back to the unshrunk view")
	}
}

func TestAdaptiveDeterministic(t *testing.T) {
	unshrunk := sampleSummary(10000, 300, map[string]int{"a": 3, "b": 0})
	shrunk := mkView(10000, 1e6, map[string]float64{"a": 0.01, "b": 0.005})
	mk := func() ([]summary.View, []Decision) {
		db := &DB{Name: "d", Unshrunk: unshrunk, Shrunk: shrunk}
		a := &Adaptive{Base: CORI{}, Opts: AdaptiveOptions{Seed: 7}}
		q := []string{"a", "b"}
		ctx := NewContext(q, []Entry{{View: unshrunk}}, nil)
		return a.Choose(q, []*DB{db}, ctx)
	}
	_, d1 := mk()
	_, d2 := mk()
	if d1[0] != d2[0] {
		t.Errorf("nondeterministic decision: %+v vs %+v", d1[0], d2[0])
	}
}

func TestAdaptiveRankEndToEnd(t *testing.T) {
	// Two databases; the relevant word was missed in db1's sample but
	// exists in its shrunk summary. Adaptive bGlOSS should select db1
	// via shrinkage while a plain bGlOSS ranking would drop it.
	db1Un := sampleSummary(20000, 300, map[string]int{"filler": 200})
	db1Sh := mkView(20000, 2e6, map[string]float64{"filler": 0.7, "rare": 0.002})
	db2Un := sampleSummary(400, 300, map[string]int{"other": 100})
	dbs := []*DB{
		{Name: "big", Unshrunk: db1Un, Shrunk: db1Sh},
		{Name: "small", Unshrunk: db2Un, Shrunk: nil},
	}
	a := &Adaptive{Base: BGloss{}}
	ranked, decisions := a.Rank([]string{"rare"}, dbs, nil)
	if !decisions[0].Shrinkage {
		t.Fatal("expected shrinkage for the big database")
	}
	if len(ranked) != 1 || ranked[0].Name != "big" {
		t.Errorf("ranked = %v, want [big]", ranked)
	}

	// Plain ranking for contrast: nothing is selected.
	entries := []Entry{{Name: "big", View: db1Un}, {Name: "small", View: db2Un}}
	ctx := NewContext([]string{"rare"}, entries, nil)
	if plain := Rank(BGloss{}, []string{"rare"}, entries, ctx); len(plain) != 0 {
		t.Errorf("plain rank = %v, want empty", plain)
	}
}

func TestRelClose(t *testing.T) {
	if !relClose(100, 101, 0.02) {
		t.Error("1% change should be close at 2% tol")
	}
	if relClose(100, 110, 0.02) {
		t.Error("10% change should not be close")
	}
	if relClose(1, math.Inf(1), 0.5) {
		t.Error("infinite previous value can never be close")
	}
}

func BenchmarkAdaptiveDecide(b *testing.B) {
	unshrunk := sampleSummary(50000, 300, map[string]int{"a": 3, "b": 0, "c": 120})
	shrunk := mkView(50000, 5e6, map[string]float64{"a": 0.01, "b": 0.005, "c": 0.4})
	db := &DB{Name: "d", Unshrunk: unshrunk, Shrunk: shrunk}
	a := &Adaptive{Base: CORI{}}
	q := []string{"a", "b", "c"}
	ctx := NewContext(q, []Entry{{View: unshrunk}}, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Choose(q, []*DB{db}, ctx)
	}
}
