package selection

import (
	"math"

	"repro/internal/summary"
)

// BGloss is the boolean GlOSS scorer of Gravano, García-Molina &
// Tomasic (Section 5.3): s(q, D) = |D| · Π_{w∈q} p̂(w|D). It has no
// smoothing: a single query word absent from the summary zeroes the
// database's score, which is why shrinkage helps it the most.
type BGloss struct{}

// Name implements Scorer.
func (BGloss) Name() string { return "bGlOSS" }

// Score implements Scorer.
func (BGloss) Score(q []string, v summary.View, _ *Context) float64 {
	s := v.DocCount()
	for _, w := range UniqueWords(q) {
		s *= v.P(w)
		if s == 0 {
			return 0
		}
	}
	return s
}

// DefaultScore implements Scorer: with no information, some p̂(w|D) is
// zero and the product collapses, so any positive score means the
// database was genuinely matched.
func (BGloss) DefaultScore(q []string, _ summary.View, _ *Context) float64 { return 0 }

// CORI is the inference-network scorer of Callan et al. as specified by
// French et al. (Section 5.3):
//
//	s(q, D) = Σ_{w∈q} (0.4 + 0.6·T·I) / |q|
//	T = p̂(w|D)·|D| / (p̂(w|D)·|D| + 50 + 150·cw(D)/mcw)
//	I = log((m + 0.5)/cf(w)) / log(m + 1.0)
type CORI struct{}

// Name implements Scorer.
func (CORI) Name() string { return "CORI" }

// Score implements Scorer.
func (CORI) Score(q []string, v summary.View, ctx *Context) float64 {
	words := UniqueWords(q)
	if len(words) == 0 {
		return 0
	}
	var s float64
	for _, w := range words {
		s += 0.4 + 0.6*coriT(w, v, ctx)*coriI(w, ctx)
	}
	return s / float64(len(words))
}

// DefaultScore implements Scorer: a database containing no query word
// has T = 0 for every word, so its score is exactly 0.4.
func (CORI) DefaultScore(q []string, _ summary.View, _ *Context) float64 { return 0.4 }

// AdditiveBaseline reports that CORI's default enters its score as an
// additive, evidence-free offset (see the adaptive selection rule).
func (CORI) AdditiveBaseline() bool { return true }

func coriT(w string, v summary.View, ctx *Context) float64 {
	df := v.P(w) * v.DocCount()
	if df <= 0 {
		return 0
	}
	mcw := ctx.MeanCW
	if mcw <= 0 {
		mcw = 1
	}
	return df / (df + 50 + 150*v.WordCount()/mcw)
}

func coriI(w string, ctx *Context) float64 {
	cf := float64(ctx.CF[w])
	if cf <= 0 {
		return 0
	}
	m := float64(ctx.M)
	return math.Log((m+0.5)/cf) / math.Log(m+1.0)
}

// LM is the language-modelling scorer of Si et al. (Section 5.3):
// s(q, D) = Π_{w∈q} (λ·p̂(w|D) + (1−λ)·p̂(w|G)), with p based on term
// frequencies and G a global category (the Root category summary).
// It is equivalent to the KL-based selection of Xu & Croft.
type LM struct {
	// Lambda is the smoothing weight (default 0.5, as the paper uses
	// following Si et al.).
	Lambda float64
}

// Name implements Scorer.
func (LM) Name() string { return "LM" }

func (lm LM) lambda() float64 {
	if lm.Lambda == 0 {
		return 0.5
	}
	return lm.Lambda
}

// Score implements Scorer.
func (lm LM) Score(q []string, v summary.View, ctx *Context) float64 {
	l := lm.lambda()
	s := 1.0
	for _, w := range UniqueWords(q) {
		var pg float64
		if ctx.Global != nil {
			pg = ctx.Global.Ptf(w)
		}
		s *= l*v.Ptf(w) + (1-l)*pg
		if s == 0 {
			return 0
		}
	}
	return s
}

// DefaultScore implements Scorer: the score of a database whose summary
// has p̂(w|D) = 0 for every query word, i.e. pure global smoothing.
func (lm LM) DefaultScore(q []string, _ summary.View, ctx *Context) float64 {
	l := lm.lambda()
	s := 1.0
	for _, w := range UniqueWords(q) {
		var pg float64
		if ctx.Global != nil {
			pg = ctx.Global.Ptf(w)
		}
		s *= (1 - l) * pg
	}
	return s
}
