package selection

import (
	"testing"
)

func reddeSamples() []ReDDESample {
	// hearts: large database, sample rich in "blood".
	heartsDocs := [][]string{
		{"blood", "pressure"}, {"blood", "valve"}, {"blood", "artery"},
		{"cardiac", "valve"}, {"blood", "pressure", "artery"},
	}
	// sports: same sample size, no medical words.
	sportsDocs := [][]string{
		{"goal", "match"}, {"penalty", "goal"}, {"league", "match"},
		{"striker", "goal"}, {"referee", "match"},
	}
	// clinic: small database mentioning blood once.
	clinicDocs := [][]string{
		{"appointment", "schedule"}, {"blood", "test"},
	}
	return []ReDDESample{
		{Name: "hearts", Docs: heartsDocs, Size: 5000},
		{Name: "sports", Docs: sportsDocs, Size: 5000},
		{Name: "clinic", Docs: clinicDocs, Size: 100},
	}
}

func TestReDDERanksByEstimatedRelevantMass(t *testing.T) {
	r, err := NewReDDE(reddeSamples(), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	ranked := r.Rank([]string{"blood"})
	if len(ranked) == 0 {
		t.Fatal("nothing selected")
	}
	if ranked[0].Name != "hearts" {
		t.Errorf("top = %s, want hearts", ranked[0].Name)
	}
	for _, rk := range ranked {
		if rk.Name == "sports" {
			t.Error("sports selected for [blood]")
		}
		if rk.Score <= 0 {
			t.Errorf("non-positive score for %s", rk.Name)
		}
	}
	// hearts' estimated relevant mass should dwarf clinic's: each
	// hearts sample doc stands for 1000 documents, clinic's for 50.
	var hearts, clinic float64
	for _, rk := range ranked {
		switch rk.Name {
		case "hearts":
			hearts = rk.Score
		case "clinic":
			clinic = rk.Score
		}
	}
	if hearts <= clinic {
		t.Errorf("hearts mass %v should exceed clinic %v", hearts, clinic)
	}
}

func TestReDDEUnknownQueryWord(t *testing.T) {
	r, err := NewReDDE(reddeSamples(), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if ranked := r.Rank([]string{"unicorn"}); len(ranked) != 0 {
		t.Errorf("selected %v for an unknown word", ranked)
	}
}

func TestReDDERatioBoundsRegion(t *testing.T) {
	// A tiny ratio restricts the relevant region to the very top of the
	// pooled ranking, so fewer databases are selected.
	samples := reddeSamples()
	wide, err := NewReDDE(samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := NewReDDE(samples, 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	w := wide.Rank([]string{"blood", "test"})
	n := narrow.Rank([]string{"blood", "test"})
	if len(n) > len(w) {
		t.Errorf("narrow region selected more databases (%d) than wide (%d)", len(n), len(w))
	}
	if len(n) == 0 {
		t.Error("narrow region selected nothing at all")
	}
}

func TestReDDEValidation(t *testing.T) {
	if _, err := NewReDDE(nil, 0.01); err == nil {
		t.Error("empty sample set accepted")
	}
	if _, err := NewReDDE(reddeSamples(), -1); err == nil {
		t.Error("negative ratio accepted")
	}
	if _, err := NewReDDE(reddeSamples(), 2); err == nil {
		t.Error("ratio > 1 accepted")
	}
}

func TestReDDEEmptySampleDatabase(t *testing.T) {
	samples := append(reddeSamples(), ReDDESample{Name: "ghost", Size: 1000})
	r, err := NewReDDE(samples, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, rk := range r.Rank([]string{"blood"}) {
		if rk.Name == "ghost" {
			t.Error("database with no sample was selected")
		}
	}
}

func TestReDDEName(t *testing.T) {
	r, err := NewReDDE(reddeSamples(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "ReDDE" {
		t.Errorf("Name = %s", r.Name())
	}
}
