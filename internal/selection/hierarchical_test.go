package selection

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/summary"
)

func hierTree() *hierarchy.Tree {
	return hierarchy.MustNew(hierarchy.Spec{
		Name: "Root",
		Children: []hierarchy.Spec{
			{Name: "Health", Children: []hierarchy.Spec{{Name: "Heart"}, {Name: "Cancer"}}},
			{Name: "Sports", Children: []hierarchy.Spec{{Name: "Soccer"}}},
		},
	})
}

func classified(t *testing.T, tree *hierarchy.Tree, name, cat string, numDocs float64, words map[string]float64) core.Classified {
	t.Helper()
	id, ok := tree.Lookup(cat)
	if !ok {
		t.Fatalf("no category %s", cat)
	}
	s := &summary.Summary{NumDocs: numDocs, CW: numDocs * 100, Words: map[string]summary.Word{}}
	for w, p := range words {
		s.Words[w] = summary.Word{P: p, Ptf: p / 10}
	}
	return core.Classified{Name: name, Category: id, Sum: s}
}

func TestHierarchicalDescendsIntoRightCategory(t *testing.T) {
	tree := hierTree()
	dbs := []core.Classified{
		classified(t, tree, "heart1", "Heart", 1000, map[string]float64{"blood": 0.5, "valve": 0.3}),
		classified(t, tree, "heart2", "Heart", 1000, map[string]float64{"blood": 0.3}),
		classified(t, tree, "soccer1", "Soccer", 1000, map[string]float64{"goal": 0.6}),
	}
	cats := core.BuildCategorySummaries(tree, dbs, core.SizeWeighted)
	h := NewHierarchical(BGloss{}, cats, dbs)
	q := []string{"blood"}
	entries := make([]Entry, len(dbs))
	for i, db := range dbs {
		entries[i] = Entry{Name: db.Name, View: db.Sum}
	}
	ctx := NewContext(q, entries, nil)
	ranked := h.Rank(q, ctx)
	if len(ranked) != 2 {
		t.Fatalf("ranked = %v, want the two heart databases", ranked)
	}
	if ranked[0].Name != "heart1" || ranked[1].Name != "heart2" {
		t.Errorf("order = %v", ranked)
	}
}

func TestHierarchicalIrreversibleChoice(t *testing.T) {
	// The weakness the paper describes (Section 6.2): when a query cuts
	// across categories, the hierarchical algorithm commits to the
	// best category first and ranks ALL its selected databases before
	// any database of the other category — even ones with lower scores.
	tree := hierTree()
	dbs := []core.Classified{
		classified(t, tree, "heartBig", "Heart", 3000, map[string]float64{"stress": 0.5}),
		classified(t, tree, "heartSmall", "Heart", 1000, map[string]float64{"stress": 0.01}),
		classified(t, tree, "soccerGood", "Soccer", 1000, map[string]float64{"stress": 0.3}),
	}
	cats := core.BuildCategorySummaries(tree, dbs, core.SizeWeighted)
	h := NewHierarchical(BGloss{}, cats, dbs)
	q := []string{"stress"}
	entries := make([]Entry, len(dbs))
	for i, db := range dbs {
		entries[i] = Entry{Name: db.Name, View: db.Sum}
	}
	ctx := NewContext(q, entries, nil)
	ranked := h.Rank(q, ctx)
	if len(ranked) != 3 {
		t.Fatalf("ranked = %v", ranked)
	}
	// Health's category summary dominates, so both heart databases come
	// first — including heartSmall, whose own score (10) is far below
	// soccerGood's (300). A flat ranking would order soccerGood second.
	if ranked[0].Name != "heartBig" || ranked[1].Name != "heartSmall" || ranked[2].Name != "soccerGood" {
		t.Errorf("hierarchical order = %v, want heartBig, heartSmall, soccerGood", ranked)
	}
	flat := Rank(BGloss{}, q, entries, ctx)
	if flat[1].Name != "soccerGood" {
		t.Errorf("flat order sanity check failed: %v", flat)
	}
}

func TestHierarchicalPrunesEmptyAndIrrelevantCategories(t *testing.T) {
	tree := hierTree()
	dbs := []core.Classified{
		classified(t, tree, "heart1", "Heart", 1000, map[string]float64{"blood": 0.5}),
	}
	cats := core.BuildCategorySummaries(tree, dbs, core.SizeWeighted)
	h := NewHierarchical(BGloss{}, cats, dbs)
	q := []string{"goal"} // no database matches
	entries := []Entry{{Name: "heart1", View: dbs[0].Sum}}
	ctx := NewContext(q, entries, nil)
	if ranked := h.Rank(q, ctx); len(ranked) != 0 {
		t.Errorf("ranked = %v, want empty", ranked)
	}
}

func TestHierarchicalDatabaseAtInternalNode(t *testing.T) {
	// A database classified directly under Health (not a leaf) must be
	// rankable alongside the leaf categories' databases.
	tree := hierTree()
	dbs := []core.Classified{
		classified(t, tree, "healthGeneral", "Health", 1000, map[string]float64{"blood": 0.4}),
		classified(t, tree, "heart1", "Heart", 1000, map[string]float64{"blood": 0.6}),
	}
	cats := core.BuildCategorySummaries(tree, dbs, core.SizeWeighted)
	h := NewHierarchical(BGloss{}, cats, dbs)
	q := []string{"blood"}
	entries := make([]Entry, len(dbs))
	for i, db := range dbs {
		entries[i] = Entry{Name: db.Name, View: db.Sum}
	}
	ctx := NewContext(q, entries, nil)
	ranked := h.Rank(q, ctx)
	if len(ranked) != 2 {
		t.Fatalf("ranked = %v, want both databases", ranked)
	}
	names := map[string]bool{}
	for _, r := range ranked {
		names[r.Name] = true
	}
	if !names["healthGeneral"] || !names["heart1"] {
		t.Errorf("missing database in %v", ranked)
	}
}
