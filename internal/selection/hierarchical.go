package selection

import (
	"sort"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/summary"
)

// Hierarchical implements the hierarchical database selection baseline
// of Ipeirotis & Gravano [17], which the paper compares shrinkage
// against (QBS-Hierarchical / FPS-Hierarchical in Section 6.2). Instead
// of modifying database summaries, it aggregates the (unshrunk)
// summaries into category summaries and selects hierarchically: at each
// category it scores the subcategories with the base algorithm and
// descends into the best one first, making irreversible choices at
// every level — the "flat vs hierarchical" weakness the shrinkage
// approach avoids.
type Hierarchical struct {
	base Scorer
	tree *hierarchy.Tree
	// catSums holds the materialized category summary of every node.
	catSums []*summary.Summary
	// dbsAt lists, per node, the indexes (into the flat database slice)
	// of databases classified exactly at that node.
	dbsAt [][]int
	// entries are the databases with their unshrunk summaries.
	entries []Entry
}

// NewHierarchical builds the hierarchical selector over the classified
// databases. cats must be the category summaries aggregated from the
// same database summaries.
func NewHierarchical(base Scorer, cats *core.CategorySummaries, dbs []core.Classified) *Hierarchical {
	tree := cats.Tree()
	h := &Hierarchical{
		base:    base,
		tree:    tree,
		catSums: make([]*summary.Summary, tree.Len()),
		dbsAt:   make([][]int, tree.Len()),
	}
	for _, id := range tree.All() {
		h.catSums[id] = cats.Summary(id)
	}
	for i, db := range dbs {
		h.entries = append(h.entries, Entry{Name: db.Name, View: db.Sum})
		h.dbsAt[db.Category] = append(h.dbsAt[db.Category], i)
	}
	return h
}

// Rank produces a ranking of the databases for the query. At each node,
// the candidates — subcategories (scored on their category summaries)
// and databases classified exactly there (scored on their own
// summaries) — are ordered by score, and categories are expanded
// recursively in place. Candidates not exceeding the base scorer's
// default score are pruned, so entire subtrees can be skipped, exactly
// like a non-selected database in flat ranking.
func (h *Hierarchical) Rank(q []string, ctx *Context) []Ranked {
	var out []Ranked
	type candidate struct {
		score float64
		cat   hierarchy.NodeID // valid if isCat
		db    int              // valid if !isCat
		isCat bool
		name  string
	}
	var expand func(node hierarchy.NodeID)
	expand = func(node hierarchy.NodeID) {
		var cands []candidate
		for _, ch := range h.tree.Children(node) {
			cs := h.catSums[ch]
			if cs.NumDocs <= 0 {
				continue // no databases under this category
			}
			score := h.base.Score(q, cs, ctx)
			if !aboveDefault(score, h.base.DefaultScore(q, cs, ctx)) {
				continue
			}
			cands = append(cands, candidate{score: score, cat: ch, isCat: true, name: h.tree.Node(ch).Name})
		}
		// Databases inside a selected category are NOT pruned by the
		// default-score rule: the hierarchical algorithm has committed
		// to the category and "continues to select databases from the
		// (relevant) category" even when their own incomplete summaries
		// carry no evidence (Section 6.2) — that commitment is both its
		// strength over Plain and its weakness against Shrinkage.
		for _, dbi := range h.dbsAt[node] {
			e := h.entries[dbi]
			score := h.base.Score(q, e.View, ctx)
			cands = append(cands, candidate{score: score, db: dbi, name: e.Name})
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].score != cands[b].score {
				return cands[a].score > cands[b].score
			}
			return cands[a].name < cands[b].name
		})
		for _, c := range cands {
			if c.isCat {
				expand(c.cat)
			} else {
				out = append(out, Ranked{Index: c.db, Name: c.name, Score: c.score})
			}
		}
	}
	expand(hierarchy.Root)
	return out
}
