// Package selection implements database selection: given a query and
// the content summaries of the available databases, produce a ranking
// of the databases by their estimated relevance (Section 2.1).
//
// Three "base" scorers from the literature are provided — bGlOSS, CORI,
// and LM (Section 5.3) — together with the hierarchical selection
// baseline of Ipeirotis & Gravano [17] and the paper's adaptive
// algorithm (Figure 3), which decides per query and per database
// whether to score with the shrunk or the unshrunk content summary.
package selection

import (
	"sort"

	"repro/internal/summary"
)

// Entry is one database as seen by a selection algorithm: a name and
// the content-summary view to score it with.
type Entry struct {
	Name string
	View summary.View
}

// Context carries the corpus-level statistics some scorers need.
type Context struct {
	// M is the number of databases being ranked.
	M int
	// MeanCW is the mean collection word count across databases (CORI's mcw).
	MeanCW float64
	// CF maps each query word to the number of databases whose summary
	// "contains" it: round(|D̂|·p̂(w|D)) >= 1, the rule Section 5.3
	// introduces so that shrunk summaries (where every word has
	// non-zero probability) do not degenerate cf(w) to M.
	CF map[string]int
	// Global is the summary the LM scorer smooths against — the "Root"
	// category summary in the paper's setup. May be nil if LM is unused.
	Global summary.View
}

// NewContext computes the statistics for one query over the entries.
func NewContext(q []string, entries []Entry, global summary.View) *Context {
	ctx := &Context{
		M:      len(entries),
		CF:     make(map[string]int, len(q)),
		Global: global,
	}
	var cwSum float64
	for _, e := range entries {
		cwSum += e.View.WordCount()
	}
	if len(entries) > 0 {
		ctx.MeanCW = cwSum / float64(len(entries))
	}
	for _, w := range q {
		if _, done := ctx.CF[w]; done {
			continue
		}
		n := 0
		for _, e := range entries {
			if summary.EffectiveDocFreq(e.View, w) >= 1 {
				n++
			}
		}
		ctx.CF[w] = n
	}
	return ctx
}

// Scorer assigns a relevance score s(q, D) to a database given its
// content summary.
type Scorer interface {
	// Name identifies the algorithm ("bGlOSS", "CORI", "LM").
	Name() string
	// Score computes s(q, D).
	Score(q []string, v summary.View, ctx *Context) float64
	// DefaultScore is the score a database receives when its summary
	// carries no information about any query word. Following the paper
	// (Section 6.2), a database whose score does not exceed this
	// default is considered not selected.
	DefaultScore(q []string, v summary.View, ctx *Context) float64
}

// Ranked is one entry of a database ranking.
type Ranked struct {
	// Index is the entry's position in the input slice.
	Index int
	Name  string
	Score float64
}

// Rank scores every entry and returns the selected databases in
// decreasing score order. Databases at or below their default score are
// excluded (not selected), which can yield fewer databases than were
// given — exactly as in the paper's evaluation.
func Rank(s Scorer, q []string, entries []Entry, ctx *Context) []Ranked {
	ranked, _ := RankWithScores(s, q, entries, ctx)
	return ranked
}

// RankWithScores is Rank plus the raw score of every entry in input
// order, including the entries the selection cut excluded — the
// per-query audit trail records why a database was *not* selected,
// which the Ranked slice alone cannot show.
func RankWithScores(s Scorer, q []string, entries []Entry, ctx *Context) ([]Ranked, []float64) {
	scores := make([]float64, len(entries))
	out := make([]Ranked, 0, len(entries))
	for i, e := range entries {
		score := s.Score(q, e.View, ctx)
		scores[i] = score
		def := s.DefaultScore(q, e.View, ctx)
		if !aboveDefault(score, def) {
			continue
		}
		out = append(out, Ranked{Index: i, Name: e.Name, Score: score})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Name < out[b].Name
	})
	return out, scores
}

// aboveDefault reports whether a score meaningfully exceeds the
// scorer's default. The comparison must be relative: probability
// products over long queries are legitimately minuscule (1e-80 for a
// 25-word bGlOSS query), so any absolute epsilon would misclassify
// genuinely selected databases as unselected.
func aboveDefault(score, def float64) bool {
	if def == 0 {
		return score > 0
	}
	return score > def*(1+1e-9)
}

// UniqueWords deduplicates a query's words preserving order; scorers
// treat queries as word sets.
func UniqueWords(q []string) []string {
	seen := make(map[string]bool, len(q))
	out := make([]string, 0, len(q))
	for _, w := range q {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}
