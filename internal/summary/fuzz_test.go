package summary

import (
	"bytes"
	"strings"
	"testing"
)

func FuzzDecode(f *testing.F) {
	// Seed with a valid encoding and structured near-misses.
	s := FromSample([][]string{{"alpha", "beta"}, {"alpha"}})
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"version":1,"num_docs":10,"words":[]}`)
	f.Add(`{"version":1,"num_docs":-1}`)
	f.Add(`{`)
	f.Add(`[]`)
	f.Fuzz(func(t *testing.T, in string) {
		got, err := Decode(strings.NewReader(in))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Anything accepted must be internally consistent and
		// re-encodable into something that decodes to the same summary.
		for w, st := range got.Words {
			if w == "" || st.P < 0 || st.P > 1 || st.Ptf < 0 || st.Ptf > 1 {
				t.Fatalf("accepted invalid word %q: %+v", w, st)
			}
		}
		var out bytes.Buffer
		if err := got.Encode(&out); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := Decode(&out)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if again.Len() != got.Len() || again.NumDocs != got.NumDocs {
			t.Fatal("round trip changed the summary")
		}
	})
}
