// Package summary implements database content summaries, the statistics
// that database selection algorithms operate on (Definitions 1 and 2 of
// the paper):
//
//   - the (estimated) number of documents in the database, |D|;
//   - for each word w, the fraction p(w|D) of documents containing w;
//   - additionally, the term-frequency fraction ptf(w|D) =
//     tf(w,D)/Σtf(w',D), which the Language Modelling selection
//     algorithm uses in place of p(w|D) (Section 5.3), and the
//     collection word count cw(D) used by CORI.
//
// A Summary can be the "perfect" S(D), computed by examining every
// document of a database (FromIndex), or the approximate Ŝ(D) derived
// from a document sample (FromSample).
package summary

import (
	"sort"

	"repro/internal/index"
)

// Word holds the per-word statistics of a content summary.
type Word struct {
	// P is the estimated fraction of database documents containing the
	// word, p̂(w|D).
	P float64
	// Ptf is the estimated fraction of database token occurrences that
	// are this word (the LM probability).
	Ptf float64
	// SampleDF is the number of sample documents containing the word
	// (s_k in Section 4); zero for perfect summaries.
	SampleDF int
}

// Summary is a content summary. The zero value is an empty summary.
// Summaries are mutable during construction and must be treated as
// immutable once shared.
type Summary struct {
	// NumDocs is the (estimated) number of documents |D̂|.
	NumDocs float64
	// CW is the (estimated) total number of word occurrences in the
	// database, CORI's cw(D).
	CW float64
	// SampleSize is the number of documents in the sample the summary
	// was derived from (|S|), or 0 for perfect summaries.
	SampleSize int
	// Words maps each known word to its statistics.
	Words map[string]Word
}

// View is the read interface selection algorithms consume. Both
// *Summary and shrunk summaries (package core) implement it.
type View interface {
	// DocCount returns |D̂|.
	DocCount() float64
	// WordCount returns the cw(D) estimate.
	WordCount() float64
	// P returns p̂(w|D), zero for unknown words.
	P(w string) float64
	// Ptf returns the term-frequency probability, zero for unknown words.
	Ptf(w string) float64
}

// DocCount implements View.
func (s *Summary) DocCount() float64 { return s.NumDocs }

// WordCount implements View.
func (s *Summary) WordCount() float64 { return s.CW }

// P implements View.
func (s *Summary) P(w string) float64 { return s.Words[w].P }

// Ptf implements View.
func (s *Summary) Ptf(w string) float64 { return s.Words[w].Ptf }

// SampleDF returns the number of sample documents containing w.
func (s *Summary) SampleDF(w string) int { return s.Words[w].SampleDF }

// Contains reports whether the summary has any statistics for w.
func (s *Summary) Contains(w string) bool {
	_, ok := s.Words[w]
	return ok
}

// Len returns the vocabulary size of the summary.
func (s *Summary) Len() int { return len(s.Words) }

// FromIndex computes the perfect content summary S(D) by examining
// every document in the database.
func FromIndex(ix *index.Index) *Summary {
	n := float64(ix.NumDocs())
	total := float64(ix.CollectionTokens())
	s := &Summary{
		NumDocs: n,
		CW:      total,
		Words:   make(map[string]Word, ix.NumTerms()),
	}
	if n == 0 {
		return s
	}
	ix.ForEachTerm(func(term string, df int, tf int64) {
		w := Word{P: float64(df) / n}
		if total > 0 {
			w.Ptf = float64(tf) / total
		}
		s.Words[term] = w
	})
	return s
}

// FromSample computes the approximate content summary Ŝ(D) from a
// document sample, treating the sample as the database (Callan &
// Connell): |D̂| = |S|, p̂(w|D) = fraction of sample documents with w.
// Size and frequency estimation (package freqest) can refine the
// result afterwards.
func FromSample(docs [][]string) *Summary {
	n := len(docs)
	s := &Summary{
		NumDocs:    float64(n),
		SampleSize: n,
		Words:      make(map[string]Word, 1024),
	}
	if n == 0 {
		return s
	}
	var total float64
	seen := make(map[string]bool, 256)
	for _, doc := range docs {
		for k := range seen {
			delete(seen, k)
		}
		for _, t := range doc {
			total++
			w := s.Words[t]
			w.Ptf++ // temporarily: raw tf
			if !seen[t] {
				seen[t] = true
				w.SampleDF++
			}
			s.Words[t] = w
		}
	}
	for t, w := range s.Words {
		w.P = float64(w.SampleDF) / float64(n)
		if total > 0 {
			w.Ptf /= total
		}
		s.Words[t] = w
	}
	s.CW = total
	return s
}

// SampleDFs returns the per-word sample document frequencies, which the
// frequency-estimation fits (Appendix A) consume.
func (s *Summary) SampleDFs() map[string]int {
	out := make(map[string]int, len(s.Words))
	for w, st := range s.Words {
		if st.SampleDF > 0 {
			out[w] = st.SampleDF
		}
	}
	return out
}

// TopWords returns the n highest-p̂ words, for display. Ties are broken
// alphabetically for determinism.
func (s *Summary) TopWords(n int) []string {
	words := make([]string, 0, len(s.Words))
	for w := range s.Words {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool {
		pi, pj := s.Words[words[i]].P, s.Words[words[j]].P
		if pi != pj {
			return pi > pj
		}
		return words[i] < words[j]
	})
	if n < len(words) {
		words = words[:n]
	}
	return words
}

// Clone returns a deep copy of the summary.
func (s *Summary) Clone() *Summary {
	out := &Summary{
		NumDocs:    s.NumDocs,
		CW:         s.CW,
		SampleSize: s.SampleSize,
		Words:      make(map[string]Word, len(s.Words)),
	}
	for w, st := range s.Words {
		out.Words[w] = st
	}
	return out
}

// EffectiveDocFreq returns round(|D̂| · p̂(w|D)), the estimated number of
// documents containing w. The paper's evaluation counts a word as
// present in a summary only when this is at least 1 (Section 6.1), and
// CORI's cf statistic uses the same rule (Section 5.3).
func EffectiveDocFreq(v View, w string) int {
	return int(v.DocCount()*v.P(w) + 0.5)
}
