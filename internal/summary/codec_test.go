package summary

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := FromSample(randomDocs(rng))
		s.NumDocs = float64(int(s.NumDocs)) * 7 // simulate a size estimate
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		if got.NumDocs != s.NumDocs || got.CW != s.CW ||
			got.SampleSize != s.SampleSize || got.Len() != s.Len() {
			return false
		}
		for w, st := range s.Words {
			if got.Words[w] != st {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	s := FromSample([][]string{{"b", "a"}, {"a", "c"}})
	var b1, b2 bytes.Buffer
	if err := s.Encode(&b1); err != nil {
		t.Fatal(err)
	}
	if err := s.Encode(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("encoding is not deterministic")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":      "hello",
		"wrong version": `{"version": 99, "num_docs": 1, "words": []}`,
		"negative size": `{"version": 1, "num_docs": -5, "words": []}`,
		"bad prob":      `{"version": 1, "num_docs": 10, "words": [{"w": "x", "p": 3}]}`,
		"empty word":    `{"version": 1, "num_docs": 10, "words": [{"w": "", "p": 0.1}]}`,
		"duplicate":     `{"version": 1, "num_docs": 10, "words": [{"w": "x", "p": 0.1}, {"w": "x", "p": 0.2}]}`,
	}
	for name, in := range cases {
		if _, err := Decode(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDecodeEmptySummary(t *testing.T) {
	s := &Summary{Words: map[string]Word{}}
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("decoded %d words from empty summary", got.Len())
	}
}
