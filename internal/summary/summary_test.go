package summary

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/index"
)

func buildIndex(docs ...string) *index.Index {
	b := index.NewBuilder(len(docs))
	for _, d := range docs {
		b.Add(strings.Fields(d))
	}
	return b.Build()
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestFromIndexPerfectSummary(t *testing.T) {
	ix := buildIndex(
		"blood pressure blood",
		"blood hypertension",
		"algorithm",
	)
	s := FromIndex(ix)
	if s.NumDocs != 3 {
		t.Errorf("NumDocs = %v", s.NumDocs)
	}
	if s.CW != 6 {
		t.Errorf("CW = %v", s.CW)
	}
	if s.SampleSize != 0 {
		t.Errorf("perfect summary has SampleSize %d", s.SampleSize)
	}
	if !approx(s.P("blood"), 2.0/3) {
		t.Errorf("P(blood) = %v", s.P("blood"))
	}
	if !approx(s.Ptf("blood"), 3.0/6) {
		t.Errorf("Ptf(blood) = %v", s.Ptf("blood"))
	}
	if s.P("missing") != 0 || s.Ptf("missing") != 0 {
		t.Error("missing word should have zero probabilities")
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestFromIndexEmpty(t *testing.T) {
	s := FromIndex(index.NewBuilder(0).Build())
	if s.NumDocs != 0 || s.Len() != 0 {
		t.Error("empty index should give empty summary")
	}
}

func TestFromSample(t *testing.T) {
	docs := [][]string{
		{"a", "a", "b"},
		{"a", "c"},
	}
	s := FromSample(docs)
	if s.NumDocs != 2 || s.SampleSize != 2 {
		t.Errorf("NumDocs=%v SampleSize=%d", s.NumDocs, s.SampleSize)
	}
	if !approx(s.P("a"), 1.0) || !approx(s.P("b"), 0.5) {
		t.Errorf("P(a)=%v P(b)=%v", s.P("a"), s.P("b"))
	}
	if !approx(s.Ptf("a"), 3.0/5) {
		t.Errorf("Ptf(a) = %v", s.Ptf("a"))
	}
	if s.SampleDF("a") != 2 || s.SampleDF("b") != 1 {
		t.Error("sample document frequencies wrong")
	}
	if s.CW != 5 {
		t.Errorf("CW = %v", s.CW)
	}
}

func TestFromSampleEmpty(t *testing.T) {
	s := FromSample(nil)
	if s.NumDocs != 0 || s.Len() != 0 {
		t.Error("empty sample should give empty summary")
	}
}

func TestSampleDFs(t *testing.T) {
	s := FromSample([][]string{{"x", "y"}, {"x"}})
	dfs := s.SampleDFs()
	want := map[string]int{"x": 2, "y": 1}
	if !reflect.DeepEqual(dfs, want) {
		t.Errorf("SampleDFs = %v", dfs)
	}
}

func TestTopWords(t *testing.T) {
	s := FromSample([][]string{
		{"common", "rare"},
		{"common", "mid"},
		{"common", "mid"},
	})
	top := s.TopWords(2)
	if !reflect.DeepEqual(top, []string{"common", "mid"}) {
		t.Errorf("TopWords = %v", top)
	}
	all := s.TopWords(100)
	if len(all) != 3 {
		t.Errorf("TopWords(100) = %v", all)
	}
}

func TestTopWordsDeterministicTies(t *testing.T) {
	s := FromSample([][]string{{"b", "a", "c"}})
	got := s.TopWords(3)
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("tie break = %v, want alphabetical", got)
	}
}

func TestClone(t *testing.T) {
	s := FromSample([][]string{{"a"}})
	c := s.Clone()
	c.Words["a"] = Word{P: 0.123}
	c.NumDocs = 999
	if s.Words["a"].P == 0.123 || s.NumDocs == 999 {
		t.Error("Clone is not a deep copy")
	}
}

func TestEffectiveDocFreq(t *testing.T) {
	s := &Summary{NumDocs: 1000, Words: map[string]Word{
		"present": {P: 0.01},   // 10 docs
		"edge":    {P: 0.0005}, // 0.5 docs -> rounds to 1
		"absent":  {P: 0.0004}, // 0.4 docs -> rounds to 0
	}}
	if got := EffectiveDocFreq(s, "present"); got != 10 {
		t.Errorf("present: %d", got)
	}
	if got := EffectiveDocFreq(s, "edge"); got != 1 {
		t.Errorf("edge: %d", got)
	}
	if got := EffectiveDocFreq(s, "absent"); got != 0 {
		t.Errorf("absent: %d", got)
	}
	if got := EffectiveDocFreq(s, "missing"); got != 0 {
		t.Errorf("missing: %d", got)
	}
}

func TestSampleSummaryApproximatesPerfect(t *testing.T) {
	// The premise of query-based sampling: frequent words get accurate
	// estimates from a sample; a full-database "sample" is exact.
	ix := buildIndex(
		"a b", "a c", "a d", "a b", "a e",
	)
	var docs [][]string
	for i := 0; i < ix.NumDocs(); i++ {
		docs = append(docs, ix.Doc(index.DocID(i)))
	}
	perfect := FromIndex(ix)
	sampled := FromSample(docs)
	for _, w := range []string{"a", "b", "c"} {
		if !approx(perfect.P(w), sampled.P(w)) {
			t.Errorf("P(%s): perfect %v vs full-sample %v", w, perfect.P(w), sampled.P(w))
		}
		if !approx(perfect.Ptf(w), sampled.Ptf(w)) {
			t.Errorf("Ptf(%s): perfect %v vs full-sample %v", w, perfect.Ptf(w), sampled.Ptf(w))
		}
	}
}
