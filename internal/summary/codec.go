package summary

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// The JSON encoding of a Summary is versioned and streams the
// vocabulary as an array (a 40k-word summary encodes in a few MB).
// Content summaries are the natural persistence unit of a
// metasearcher: sampling a remote database is expensive, so deployments
// build summaries offline and load them at query time — the paper
// computes the λ weights offline for the same reason (Section 3.2).

// codecVersion guards against decoding incompatible files.
const codecVersion = 1

// jsonSummary is the wire form of a Summary.
type jsonSummary struct {
	Version    int        `json:"version"`
	NumDocs    float64    `json:"num_docs"`
	CW         float64    `json:"cw"`
	SampleSize int        `json:"sample_size"`
	Words      []jsonWord `json:"words"`
}

type jsonWord struct {
	W        string  `json:"w"`
	P        float64 `json:"p"`
	Ptf      float64 `json:"ptf,omitempty"`
	SampleDF int     `json:"df,omitempty"`
}

// Encode writes the summary as JSON.
func (s *Summary) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	js := jsonSummary{
		Version:    codecVersion,
		NumDocs:    s.NumDocs,
		CW:         s.CW,
		SampleSize: s.SampleSize,
		Words:      make([]jsonWord, 0, len(s.Words)),
	}
	// Deterministic output: alphabetical word order.
	for _, word := range s.TopWords(len(s.Words)) {
		st := s.Words[word]
		js.Words = append(js.Words, jsonWord{W: word, P: st.P, Ptf: st.Ptf, SampleDF: st.SampleDF})
	}
	enc := json.NewEncoder(bw)
	if err := enc.Encode(js); err != nil {
		return fmt.Errorf("summary: encode: %w", err)
	}
	return bw.Flush()
}

// Decode reads a summary previously written by Encode.
func Decode(r io.Reader) (*Summary, error) {
	var js jsonSummary
	dec := json.NewDecoder(bufio.NewReader(r))
	if err := dec.Decode(&js); err != nil {
		return nil, fmt.Errorf("summary: decode: %w", err)
	}
	if js.Version != codecVersion {
		return nil, fmt.Errorf("summary: unsupported version %d", js.Version)
	}
	if js.NumDocs < 0 || js.SampleSize < 0 {
		return nil, errors.New("summary: negative size fields")
	}
	s := &Summary{
		NumDocs:    js.NumDocs,
		CW:         js.CW,
		SampleSize: js.SampleSize,
		Words:      make(map[string]Word, len(js.Words)),
	}
	for _, w := range js.Words {
		if w.W == "" {
			return nil, errors.New("summary: empty word")
		}
		if w.P < 0 || w.P > 1 || w.Ptf < 0 || w.Ptf > 1 {
			return nil, fmt.Errorf("summary: word %q has out-of-range probabilities", w.W)
		}
		if _, dup := s.Words[w.W]; dup {
			return nil, fmt.Errorf("summary: duplicate word %q", w.W)
		}
		s.Words[w.W] = Word{P: w.P, Ptf: w.Ptf, SampleDF: w.SampleDF}
	}
	return s, nil
}
