package summary

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/index"
)

// randomDocs builds a random small corpus over a bounded vocabulary.
func randomDocs(rng *rand.Rand) [][]string {
	n := 1 + rng.Intn(40)
	docs := make([][]string, n)
	for i := range docs {
		l := 1 + rng.Intn(15)
		doc := make([]string, l)
		for j := range doc {
			doc[j] = string(rune('a' + rng.Intn(12)))
		}
		docs[i] = doc
	}
	return docs
}

// Property: FromSample and FromIndex agree when the "sample" is the
// whole collection.
func TestFromSampleMatchesFromIndexOnFullCorpus(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		docs := randomDocs(rng)
		b := index.NewBuilder(len(docs))
		for _, d := range docs {
			b.Add(d)
		}
		ix := b.Build()
		a := FromIndex(ix)
		s := FromSample(docs)
		if a.NumDocs != s.NumDocs || a.Len() != s.Len() || a.CW != s.CW {
			return false
		}
		for w, st := range a.Words {
			other := s.Words[w]
			if math.Abs(st.P-other.P) > 1e-12 || math.Abs(st.Ptf-other.Ptf) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: probabilities are bounded and Ptf sums to 1 over the
// vocabulary of a non-empty sample.
func TestSampleSummaryDistributionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := FromSample(randomDocs(rng))
		var ptfSum float64
		for _, st := range s.Words {
			if st.P <= 0 || st.P > 1 || st.Ptf <= 0 || st.Ptf > 1 {
				return false
			}
			if st.SampleDF < 1 || float64(st.SampleDF) > s.NumDocs {
				return false
			}
			ptfSum += st.Ptf
		}
		return math.Abs(ptfSum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: TopWords is sorted by decreasing probability.
func TestTopWordsSorted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := FromSample(randomDocs(rng))
		top := s.TopWords(s.Len())
		for i := 1; i < len(top); i++ {
			if s.P(top[i]) > s.P(top[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
