// Package slo tracks serving-level objectives for the query gateway:
// "99% of requests succeed within 500ms", measured continuously, with
// the error budget and its burn rate computed over several windows at
// once. One slow minute inside a quiet hour looks very different from
// a slow hour: multi-window burn rates are what distinguish "page
// someone" from "watch it" (the Google SRE workbook's multi-window,
// multi-burn-rate alerting model).
//
// A Tracker receives one Record call per request (latency + failure
// verdict) and maintains a ring of per-second buckets, so reports are
// exact over each configured window rather than decayed estimates. The
// report is served as JSON at /debug/slo via Handler.
//
// Definitions, per objective and window:
//
//	bad fraction    = bad requests / total requests
//	error budget    = 1 - target          (the allowed bad fraction)
//	burn rate       = bad fraction / error budget
//
// A burn rate of 1.0 consumes exactly the budget if sustained; 14.4
// over an hour is the classic "page now" threshold for a 30-day SLO.
package slo

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Objective is one serving-level objective: a target fraction of
// requests that must be "good". A request is bad when it failed, or —
// if LatencyThreshold is set — when it completed slower than the
// threshold.
type Objective struct {
	// Name labels the objective in reports (e.g. "latency", "availability").
	Name string
	// Target is the required good fraction in (0, 1), e.g. 0.99.
	Target float64
	// LatencyThreshold marks requests slower than this as bad (0 =
	// availability only: only failures are bad).
	LatencyThreshold time.Duration
}

// DefaultWindows are the report windows when Config.Windows is empty:
// short enough to catch a fast burn, long enough to see a slow one.
var DefaultWindows = []time.Duration{time.Minute, 5 * time.Minute, 30 * time.Minute}

// Config configures a Tracker.
type Config struct {
	// Objectives to track. Empty selects DefaultObjectives().
	Objectives []Objective
	// Windows are the burn-rate horizons (default DefaultWindows). The
	// longest window bounds the tracker's memory: one small bucket per
	// second of it.
	Windows []time.Duration
	// Registry, when non-nil, lets the report include the gateway's
	// live latency percentiles (from LatencyWindow) next to the burn
	// rates, so /debug/slo is a one-stop serving-health page.
	Registry *telemetry.Registry
	// LatencyWindow names the telemetry window quantiles are read from
	// (default "gateway_latency_window").
	LatencyWindow string
	// Now overrides the clock (tests). Nil uses time.Now.
	Now func() time.Time
}

// DefaultObjectives returns the stock gateway objectives: 99% of
// requests under the given latency threshold, and 99.9% of requests
// not failing at all.
func DefaultObjectives(threshold time.Duration) []Objective {
	if threshold <= 0 {
		threshold = 500 * time.Millisecond
	}
	return []Objective{
		{Name: "latency", Target: 0.99, LatencyThreshold: threshold},
		{Name: "availability", Target: 0.999},
	}
}

// bucket is one second of request outcomes. bad has one slot per
// objective.
type bucket struct {
	sec   int64
	total int64
	bad   []int64
}

// Tracker accumulates request outcomes into per-second buckets and
// reports multi-window burn rates. All methods are safe for concurrent
// use and safe on a nil receiver (no-ops), so wiring is optional.
type Tracker struct {
	cfg     Config
	windows []time.Duration

	mu      sync.Mutex
	buckets []bucket
	started time.Time
	total   int64
	bad     []int64 // per objective, since start
}

// New builds a Tracker.
func New(cfg Config) *Tracker {
	if len(cfg.Objectives) == 0 {
		cfg.Objectives = DefaultObjectives(0)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.LatencyWindow == "" {
		cfg.LatencyWindow = "gateway_latency_window"
	}
	windows := append([]time.Duration(nil), cfg.Windows...)
	if len(windows) == 0 {
		windows = append(windows, DefaultWindows...)
	}
	sort.Slice(windows, func(i, j int) bool { return windows[i] < windows[j] })
	longest := windows[len(windows)-1]
	n := int(longest/time.Second) + 1
	t := &Tracker{
		cfg:     cfg,
		windows: windows,
		buckets: make([]bucket, n),
		started: cfg.Now(),
		bad:     make([]int64, len(cfg.Objectives)),
	}
	for i := range t.buckets {
		t.buckets[i].sec = -1
		t.buckets[i].bad = make([]int64, len(cfg.Objectives))
	}
	return t
}

// Record registers one completed request: its latency and whether it
// failed (shed, 5xx, timeout). Latency-threshold objectives judge
// successful requests too.
func (t *Tracker) Record(latency time.Duration, failed bool) {
	if t == nil {
		return
	}
	sec := t.cfg.Now().Unix()
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &t.buckets[sec%int64(len(t.buckets))]
	if b.sec != sec {
		b.sec = sec
		b.total = 0
		for i := range b.bad {
			b.bad[i] = 0
		}
	}
	b.total++
	t.total++
	for i, o := range t.cfg.Objectives {
		if failed || (o.LatencyThreshold > 0 && latency > o.LatencyThreshold) {
			b.bad[i]++
			t.bad[i]++
		}
	}
}

// WindowReport is one objective's state over one window.
type WindowReport struct {
	// Window is the horizon, formatted as a Go duration ("5m0s").
	Window string `json:"window"`
	// Total and Bad count the window's requests and its objective
	// violations.
	Total int64 `json:"total"`
	Bad   int64 `json:"bad"`
	// BadFraction is Bad/Total (0 when idle).
	BadFraction float64 `json:"bad_fraction"`
	// BurnRate is BadFraction divided by the error budget (1-target):
	// 1.0 consumes exactly the budget if sustained.
	BurnRate float64 `json:"burn_rate"`
	// BudgetRemaining is 1 - BurnRate: the fraction of this window's
	// error budget left (negative = overspent).
	BudgetRemaining float64 `json:"budget_remaining"`
}

// ObjectiveReport is one objective's full multi-window state.
type ObjectiveReport struct {
	Name   string  `json:"name"`
	Target float64 `json:"target"`
	// LatencyThresholdSeconds is 0 for availability-only objectives.
	LatencyThresholdSeconds float64        `json:"latency_threshold_seconds,omitempty"`
	Windows                 []WindowReport `json:"windows"`
	// TotalSinceStart/BadSinceStart accumulate since the tracker was
	// created (the "lifetime" view next to the windows).
	TotalSinceStart int64 `json:"total_since_start"`
	BadSinceStart   int64 `json:"bad_since_start"`
}

// LatencyQuantiles mirrors the gateway's live latency window.
type LatencyQuantiles struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Report is the full /debug/slo document.
type Report struct {
	// UptimeSeconds is how long the tracker has been recording.
	UptimeSeconds float64           `json:"uptime_seconds"`
	Objectives    []ObjectiveReport `json:"objectives"`
	// Latency is the gateway's live success-latency quantiles, when a
	// registry was wired in.
	Latency *LatencyQuantiles `json:"latency,omitempty"`
}

// Report computes the current multi-window state.
func (t *Tracker) Report() Report {
	if t == nil {
		return Report{}
	}
	now := t.cfg.Now()
	nowSec := now.Unix()
	t.mu.Lock()
	rep := Report{UptimeSeconds: now.Sub(t.started).Seconds()}
	for oi, o := range t.cfg.Objectives {
		or := ObjectiveReport{
			Name:                    o.Name,
			Target:                  o.Target,
			LatencyThresholdSeconds: o.LatencyThreshold.Seconds(),
			TotalSinceStart:         t.total,
			BadSinceStart:           t.bad[oi],
		}
		for _, w := range t.windows {
			var total, bad int64
			secs := int64(w / time.Second)
			// A bucket is inside the window when its second is one of the
			// last `secs` seconds (the current, possibly partial, second
			// included).
			for i := range t.buckets {
				b := &t.buckets[i]
				if b.sec < 0 || b.sec > nowSec || nowSec-b.sec >= secs {
					continue
				}
				total += b.total
				bad += b.bad[oi]
			}
			wr := WindowReport{Window: w.String(), Total: total, Bad: bad}
			if total > 0 {
				wr.BadFraction = float64(bad) / float64(total)
			}
			if budget := 1 - o.Target; budget > 0 {
				wr.BurnRate = wr.BadFraction / budget
			}
			wr.BudgetRemaining = 1 - wr.BurnRate
			or.Windows = append(or.Windows, wr)
		}
		rep.Objectives = append(rep.Objectives, or)
	}
	t.mu.Unlock()
	if t.cfg.Registry != nil {
		snap := t.cfg.Registry.Snapshot()
		if ws, ok := snap.Windows[t.cfg.LatencyWindow]; ok {
			rep.Latency = &LatencyQuantiles{Count: ws.Count, P50: ws.P50, P95: ws.P95, P99: ws.P99}
		}
	}
	return rep
}

// Handler serves the report as JSON (the /debug/slo endpoint).
func (t *Tracker) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, `{"error": "slo tracking disabled"}`, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(t.Report())
	})
}

// Format renders the report as an aligned human-readable table, for
// loadtest summaries.
func (r Report) Format() string {
	out := ""
	for _, o := range r.Objectives {
		out += fmt.Sprintf("slo %-14s target=%.4g", o.Name, o.Target)
		if o.LatencyThresholdSeconds > 0 {
			out += fmt.Sprintf(" threshold=%s", time.Duration(o.LatencyThresholdSeconds*float64(time.Second)))
		}
		out += "\n"
		for _, w := range o.Windows {
			out += fmt.Sprintf("  %-8s total=%-7d bad=%-6d burn=%.3g budget_remaining=%.3g\n",
				w.Window, w.Total, w.Bad, w.BurnRate, w.BudgetRemaining)
		}
	}
	return out
}
