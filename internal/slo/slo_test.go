package slo

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fakeClock is a manually advanced clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestTracker(windows ...time.Duration) (*Tracker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	t := New(Config{
		Objectives: []Objective{
			{Name: "latency", Target: 0.9, LatencyThreshold: 100 * time.Millisecond},
			{Name: "availability", Target: 0.99},
		},
		Windows: windows,
		Now:     clk.now,
	})
	return t, clk
}

func findObjective(t *testing.T, rep Report, name string) ObjectiveReport {
	t.Helper()
	for _, o := range rep.Objectives {
		if o.Name == name {
			return o
		}
	}
	t.Fatalf("objective %q missing from report %+v", name, rep)
	return ObjectiveReport{}
}

func TestBurnRateComputation(t *testing.T) {
	tr, _ := newTestTracker(time.Minute)

	// 100 requests: 20 slow (latency objective bad), 1 failed (bad for
	// both objectives).
	for i := 0; i < 79; i++ {
		tr.Record(10*time.Millisecond, false)
	}
	for i := 0; i < 20; i++ {
		tr.Record(200*time.Millisecond, false)
	}
	tr.Record(10*time.Millisecond, true)

	rep := tr.Report()
	lat := findObjective(t, rep, "latency")
	w := lat.Windows[0]
	if w.Total != 100 || w.Bad != 21 {
		t.Fatalf("latency window = %+v, want total=100 bad=21", w)
	}
	// bad fraction 0.21, budget 0.1 => burn 2.1
	if w.BurnRate < 2.09 || w.BurnRate > 2.11 {
		t.Errorf("latency burn = %v, want 2.1", w.BurnRate)
	}
	if w.BudgetRemaining > -1.09 || w.BudgetRemaining < -1.11 {
		t.Errorf("budget remaining = %v, want -1.1", w.BudgetRemaining)
	}

	avail := findObjective(t, rep, "availability")
	aw := avail.Windows[0]
	if aw.Bad != 1 {
		t.Fatalf("availability bad = %d, want 1", aw.Bad)
	}
	// bad fraction 0.01, budget 0.01 => burn 1.0
	if aw.BurnRate < 0.99 || aw.BurnRate > 1.01 {
		t.Errorf("availability burn = %v, want 1.0", aw.BurnRate)
	}
}

func TestWindowsExpire(t *testing.T) {
	tr, clk := newTestTracker(time.Minute, 5*time.Minute)

	tr.Record(10*time.Millisecond, true) // bad now
	clk.advance(2 * time.Minute)
	tr.Record(10*time.Millisecond, false) // good later

	rep := tr.Report()
	avail := findObjective(t, rep, "availability")
	if len(avail.Windows) != 2 {
		t.Fatalf("windows = %+v", avail.Windows)
	}
	short, long := avail.Windows[0], avail.Windows[1]
	if short.Window != "1m0s" || long.Window != "5m0s" {
		t.Fatalf("window order = %q, %q", short.Window, long.Window)
	}
	// The bad request has aged out of the 1m window but not the 5m one.
	if short.Total != 1 || short.Bad != 0 {
		t.Errorf("1m window = %+v, want total=1 bad=0", short)
	}
	if long.Total != 2 || long.Bad != 1 {
		t.Errorf("5m window = %+v, want total=2 bad=1", long)
	}
	if avail.TotalSinceStart != 2 || avail.BadSinceStart != 1 {
		t.Errorf("lifetime = total %d bad %d, want 2/1", avail.TotalSinceStart, avail.BadSinceStart)
	}
}

func TestBucketRingReuse(t *testing.T) {
	tr, clk := newTestTracker(2 * time.Second)
	tr.Record(time.Millisecond, true)
	// Advance far enough that the ring slot is reused; the old outcome
	// must not resurface.
	clk.advance(time.Hour)
	tr.Record(time.Millisecond, false)
	w := findObjective(t, tr.Report(), "availability").Windows[0]
	if w.Total != 1 || w.Bad != 0 {
		t.Errorf("window after ring reuse = %+v, want total=1 bad=0", w)
	}
}

func TestIdleTrackerReportsZeroBurn(t *testing.T) {
	tr, _ := newTestTracker(time.Minute)
	w := findObjective(t, tr.Report(), "latency").Windows[0]
	if w.Total != 0 || w.BurnRate != 0 || w.BudgetRemaining != 1 {
		t.Errorf("idle window = %+v, want zero burn and full budget", w)
	}
}

func TestNilTrackerIsSafe(t *testing.T) {
	var tr *Tracker
	tr.Record(time.Second, true) // must not panic
	if rep := tr.Report(); len(rep.Objectives) != 0 {
		t.Errorf("nil report = %+v", rep)
	}
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	if rec.Code != 404 {
		t.Errorf("nil handler status = %d, want 404", rec.Code)
	}
}

func TestHandlerJSON(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Window("gateway_latency_window", 0).Observe(0.05)
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	tr := New(Config{Registry: reg, Now: clk.now})
	tr.Record(50*time.Millisecond, false)

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var rep Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("decoding: %v\n%s", err, rec.Body.String())
	}
	// Default objectives: latency + availability, default windows.
	if len(rep.Objectives) != 2 {
		t.Fatalf("objectives = %+v", rep.Objectives)
	}
	if got := len(rep.Objectives[0].Windows); got != len(DefaultWindows) {
		t.Errorf("windows = %d, want %d", got, len(DefaultWindows))
	}
	if rep.Latency == nil || rep.Latency.Count != 1 || rep.Latency.P50 != 0.05 {
		t.Errorf("latency quantiles = %+v", rep.Latency)
	}
}

func TestConcurrentRecord(t *testing.T) {
	tr, _ := newTestTracker(time.Minute)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				tr.Record(time.Millisecond, j%10 == 0)
				if j%100 == 0 {
					tr.Report()
				}
			}
		}()
	}
	wg.Wait()
	w := findObjective(t, tr.Report(), "availability").Windows[0]
	if w.Total != 4000 || w.Bad != 400 {
		t.Errorf("concurrent totals = %+v, want total=4000 bad=400", w)
	}
}
